(** Benchmark harness: regenerates every table and figure of the
    paper's evaluation (see DESIGN.md experiment index E0–E14), then
    runs Bechamel microbenchmarks of the compiler passes.

    Usage:
      main.exe                  regenerate everything
      main.exe --table 4-1      one artifact (example, 4-1, 4-2,
                                lower-bound, code-size, mve, hier,
                                scale, search, unroll, optimal,
                                optimal-quick, optimal-learning,
                                optimal-learning-quick, pipeline,
                                trace-overhead, compile-speed,
                                compile-speed-quick, serve, slo,
                                campaign, campaign-quick,
                                campaign-sweep)
      main.exe --table campaign [--seeds LO..HI] [--jobs N]
                                [--bank DIR] [--inject SITE\@K]
                                streaming differential fuzzing
                                campaign over generated W2 programs;
                                failing seeds are delta-minimized and
                                banked as replayable .w2 regressions
                                under DIR; exits 1 on any failure
      main.exe --figure 4-1     one figure (4-1, 4-2)
      main.exe --bechamel       scheduler-cost microbenchmarks only
      ... --emit-json FILE      additionally write every artifact the
                                invocation produced as one JSON
                                document with a stable schema
      main.exe --compare OLD.json NEW.json [--threshold PCT]
                                regression sentinel: diff two
                                --emit-json pipeline artifacts per
                                kernel and loop; exit 1 on any
                                regression beyond PCT (default 2%)
      ... --inject SITE\@K       arm deterministic fault injection
                                while generating (degrades loops, for
                                exercising the sentinel in CI) *)

open Sp_kernels
module C = Sp_core.Compile
module Machine = Sp_machine.Machine
module Table = Sp_util.Table
module Histogram = Sp_util.Histogram
module Json = Sp_obs.Json

let cells = 10.0 (* Warp array size; paper reports array-level MFLOPS *)

let section title =
  Fmt.pr "@.=== %s ===@.@." title

(* ---- JSON artifact collection (--emit-json) ----------------------- *)

(** Artifacts registered by the table/figure generators of this
    invocation, in generation order. Key order inside each artifact is
    fixed by construction and row contents are deterministic (no
    wall-clock values), so emitting the same tables twice yields
    byte-identical documents — the property the CI schema-stability
    check diffs for. *)
let artifacts : (string * Json.t) list ref = ref []

(** Default schema tag for the artifact [name] — ["bench-NAME/1"].
    Bump the generation suffix when an artifact's shape changes
    incompatibly; [--compare] rejects cross-generation diffs outright
    and [devtools/jsonv] pins the tags in CI. *)
let artifact_schema name = "bench-" ^ name ^ "/1"

(** Register an artifact, stamping its schema tag here so no generator
    can forget one: an object that already carries ["schema"] (e.g. the
    slo artifact's [bench-slo/1]) keeps it, any other object gets
    {!artifact_schema}[ name] prepended, and a non-object is wrapped. *)
let emit name j =
  let j =
    match j with
    | Json.Obj kvs when List.mem_assoc "schema" kvs -> j
    | Json.Obj kvs ->
      Json.Obj (("schema", Json.Str (artifact_schema name)) :: kvs)
    | other ->
      Json.Obj
        [ ("schema", Json.Str (artifact_schema name)); ("value", other) ]
  in
  artifacts := (name, j) :: !artifacts

(** Gated-table failures must fail the invocation, but artifacts are
    written at the very end of [main] — so gating tables (campaign,
    E21) record the failure here and the driver exits with it after
    [write_artifacts]. *)
let exit_status = ref 0

let json_of_table (t : Table.t) : Json.t =
  Json.Obj
    [
      ("headers", Json.List (List.map (fun h -> Json.Str h) t.Table.headers));
      ( "rows",
        Json.List
          (List.rev_map
             (fun r -> Json.List (List.map (fun c -> Json.Str c) r))
             !(t.Table.rows)) );
    ]

let json_of_histogram (h : Histogram.t) : Json.t =
  Json.Obj
    [
      ("lo", Json.Float h.Histogram.lo);
      ("width", Json.Float h.Histogram.width);
      ("count", Json.Int (Histogram.count h));
      ("mean", Json.Float (Histogram.mean h));
      ( "buckets",
        Json.List
          (Array.to_list (Array.map (fun c -> Json.Int c) h.Histogram.counts))
      );
    ]

let write_artifacts path =
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int 1);
        ("generator", Json.Str "softpipe-bench");
        ("artifacts", Json.Obj (List.rev !artifacts));
      ]
  in
  let oc = open_out path in
  Json.to_channel ~pretty:true oc doc;
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.wrote %s@." path

let check_tag (m : Kernel.measurement) =
  match m.Kernel.failure with
  | Some f -> " !! " ^ String.uppercase_ascii f
  | None ->
    if not m.Kernel.sem_ok then " !! SEMANTICS MISMATCH"
    else if not m.Kernel.resource_ok then " !! RESOURCE VIOLATION"
    else ""

(* ------------------------------------------------------------------ *)
(* E0: the Section 2 worked example                                    *)
(* ------------------------------------------------------------------ *)

let table_example () =
  section "E0: Section 2 worked example (a[i] := a[i] + K on the toy machine)";
  let src =
    {|program vadd;
var a : array [0..99] of float; k : int;
begin for k := 0 to 99 do a[k] := a[k] + 3.5; end.|}
  in
  let k = Kernel.mk "vadd-toy" ~init:(Kernel.init_all_arrays ~seed:1) (Kernel.W2 src) in
  let factor, piped, local = Kernel.speedup Machine.toy k in
  let lr = List.hd piped.Kernel.loops in
  emit "example"
    (Json.Obj
       [
         ("ii", match lr.C.ii with Some s -> Json.Int s | None -> Json.Null);
         ("mii", Json.Int lr.C.mii);
         ("seq_len", Json.Int lr.C.seq_len);
         ("cycles_pipelined", Json.Int piped.Kernel.cycles);
         ("cycles_local", Json.Int local.Kernel.cycles);
         ("speedup", Json.Float factor);
       ]);
  Fmt.pr
    "  initiation interval: %s (lower bound %d)@.\
    \  unpipelined restart:  %d cycles per iteration@.\
    \  cycles: %d pipelined vs %d unpipelined  =>  speed-up %.2fx@.\
    \  (paper: II = 1, four instructions per unpipelined iteration,@.\
    \   'four times the speed of the original program')%s@."
    (match lr.C.ii with Some s -> string_of_int s | None -> "-")
    lr.C.mii lr.C.seq_len piped.Kernel.cycles local.Kernel.cycles factor
    (check_tag piped)

(* ------------------------------------------------------------------ *)
(* E1: Table 4-1                                                       *)
(* ------------------------------------------------------------------ *)

let table_4_1 () =
  section "E1: Table 4-1 — performance of application programs (Warp array)";
  let t =
    Table.create
      ~headers:
        [ "task"; "cycles"; "flops"; "cell MFLOPS"; "array MFLOPS";
          "paper"; "status" ]
      ~aligns:[ Table.L; R; R; R; R; R; L ]
  in
  List.iter
    (fun (k, paper) ->
      let m = Kernel.run Machine.warp k in
      Table.add_row t
        [
          m.Kernel.kernel;
          string_of_int m.Kernel.cycles;
          string_of_int m.Kernel.flops;
          Printf.sprintf "%.2f" m.Kernel.mflops;
          Printf.sprintf "%.1f" (cells *. m.Kernel.mflops);
          (match paper with Some x -> Printf.sprintf "%.1f" x | None -> "?");
          (if m.Kernel.sem_ok && m.Kernel.resource_ok then "ok"
           else "INVALID");
        ])
    Apps.all;
  (* the systolic matmul again, on a TRUE 10-cell co-simulation with
     blocking queues instead of the paper's one-tenth accounting *)
  (let k, _ = List.hd Apps.all in
   let p = Kernel.program k in
   let r = C.program Machine.warp p in
   let n = 48 * 48 in
   let feed =
     [ List.init n (fun i -> 0.5 +. (0.125 *. float_of_int (i mod 31)));
       List.init n (fun i ->
           0.125 *. (0.5 +. (0.125 *. float_of_int (i mod 31)))) ]
   in
   let init _ st = Kernel.init_all_arrays ~seed:41 st p in
   match
     Sp_vliw.Array_sim.run ~cells:10 ~feed ~init Machine.warp p
       [| r.C.code |]
   with
   | exception Sp_vliw.Sim.Cycle_limit n ->
     Table.add_row t
       [ "matmul (true 10-cell co-sim)"; "-"; "-"; "-"; "-"; "79.4";
         Printf.sprintf "FAILED: cycle limit %d" n ]
   | exception Sp_vliw.Sim.Write_conflict msg ->
     Table.add_row t
       [ "matmul (true 10-cell co-sim)"; "-"; "-"; "-"; "-"; "79.4";
         "FAILED: write-port conflict: " ^ msg ]
   | res ->
     Table.add_row t
       [
         "matmul (true 10-cell co-sim)";
         string_of_int res.Sp_vliw.Array_sim.cycles;
         string_of_int res.Sp_vliw.Array_sim.flops;
         "-";
         Printf.sprintf "%.1f" (Sp_vliw.Array_sim.mflops Machine.warp res);
         "79.4";
         "ok";
       ]);
  emit "table_4_1" (json_of_table t);
  Fmt.pr "%a" Table.pp t;
  Fmt.pr
    "@.  (array MFLOPS = 10 x cell MFLOPS, the paper's own accounting;@.\
    \   the co-sim row runs ten coupled cells with blocking 512-word@.\
    \   queues; problem sizes scaled for simulation, see EXPERIMENTS.md)@."

(* ------------------------------------------------------------------ *)
(* E4: Table 4-2                                                       *)
(* ------------------------------------------------------------------ *)

let table_4_2 () =
  section "E4: Table 4-2 — Livermore loops on a single Warp cell";
  let t =
    Table.create
      ~headers:
        [ "kernel"; "MFLOPS"; "eff(lb)"; "speedup"; "paper M/e/s"; "pipelined?" ]
      ~aligns:[ Table.L; R; R; R; R; L ]
  in
  List.iter
    (fun k ->
      let factor, piped, _local = Kernel.speedup Machine.warp k in
      let eff = Kernel.efficiency piped in
      let pipelined =
        List.exists
          (fun (lr : C.loop_report) -> lr.C.status = C.Pipelined)
          piped.Kernel.loops
      in
      let why =
        match piped.Kernel.loops with
        | [] -> "-"
        | lrs ->
          String.concat ","
            (List.sort_uniq compare
               (List.map (fun (lr : C.loop_report) ->
                    C.status_to_string lr.C.status)
                  lrs))
      in
      let paper =
        match List.assoc_opt piped.Kernel.kernel Livermore.paper_reference with
        | Some (m, e, s) -> Printf.sprintf "%.2f/%.2f/%.2f" m e s
        | None -> "-"
      in
      Table.add_row t
        [
          piped.Kernel.kernel ^ check_tag piped;
          Printf.sprintf "%.2f" piped.Kernel.mflops;
          Printf.sprintf "%.2f" eff;
          Printf.sprintf "%.2f" factor;
          paper;
          (if pipelined then "yes" else "no (" ^ why ^ ")");
        ])
    Livermore.all;
  emit "table_4_2" (json_of_table t);
  Fmt.pr "%a" Table.pp t;
  Fmt.pr
    "@.  (paper M/e/s = MFLOPS / efficiency lower bound / speed-up for rows@.\
    \   legible in the source scan; LFK20 and LFK22 are expected not to@.\
    \   pipeline — bound within the serial length, and EXP body over the@.\
    \   length threshold, exactly the paper's reasons)@."

(* ------------------------------------------------------------------ *)
(* E2/E3/E5: the 72-program population                                 *)
(* ------------------------------------------------------------------ *)

type suite_row = {
  r_name : string;
  r_cond : bool;
  r_speedup : float;
  r_cell_mflops : float;
  r_loops : C.loop_report list;
  r_valid : bool;
}

let suite_rows = ref None

let compute_suite () =
  match !suite_rows with
  | Some r -> r
  | None ->
    let rows =
      List.map
        (fun (e : Suite.entry) ->
          let f, piped, local = Kernel.speedup Machine.warp e.Suite.kernel in
          {
            r_name = piped.Kernel.kernel;
            r_cond = e.Suite.has_cond;
            r_speedup = f;
            r_cell_mflops = piped.Kernel.mflops;
            r_loops = piped.Kernel.loops;
            r_valid =
              piped.Kernel.sem_ok && piped.Kernel.resource_ok
              && local.Kernel.sem_ok;
          })
        Suite.all
    in
    suite_rows := Some rows;
    rows

let figure_4_1 () =
  section "E2: Figure 4-1 — MFLOPS of the 72-program population (array)";
  let rows = compute_suite () in
  let h = Histogram.create ~lo:0.0 ~width:10.0 ~buckets:11 in
  List.iter (fun r -> Histogram.add h (cells *. r.r_cell_mflops)) rows;
  emit "figure_4_1" (json_of_histogram h);
  Fmt.pr "%a" (Histogram.pp ~bar_unit:1) h;
  Fmt.pr "  programs: %d   mean: %.1f array MFLOPS   invalid: %d@."
    (Histogram.count h) (Histogram.mean h)
    (List.length (List.filter (fun r -> not r.r_valid) rows))

let figure_4_2 () =
  section "E3: Figure 4-2 — speed-up over locally compacted code";
  let rows = compute_suite () in
  let h = Histogram.create ~lo:1.0 ~width:0.5 ~buckets:13 in
  List.iter (fun r -> Histogram.add h r.r_speedup) rows;
  emit "figure_4_2" (json_of_histogram h);
  Fmt.pr "%a" (Histogram.pp ~bar_unit:1) h;
  let avg l =
    List.fold_left (fun a r -> a +. r.r_speedup) 0.0 l
    /. float_of_int (max 1 (List.length l))
  in
  let cond, nocond = List.partition (fun r -> r.r_cond) rows in
  Fmt.pr
    "  mean speed-up: %.2f  (with conditionals: %.2f over %d programs,@.\
    \   without: %.2f over %d)   [paper: mean 3x, 42 of 72 conditional]@."
    (avg rows) (avg cond) (List.length cond) (avg nocond)
    (List.length nocond)

let table_lower_bound () =
  section "E5: Section 4.1 claims — loops meeting the II lower bound";
  let rows = compute_suite () in
  let loops = List.concat_map (fun r -> List.map (fun l -> (r, l)) r.r_loops) rows in
  let pipelined =
    List.filter
      (fun ((_, l) : _ * C.loop_report) -> l.C.status = C.Pipelined)
      loops
  in
  let at_bound =
    List.filter (fun (_, l) -> l.C.ii = Some l.C.mii) pipelined
  in
  let plain =
    List.filter (fun (_, l) -> (not l.C.has_if) && not l.C.has_scc) pipelined
  in
  let plain_at_bound =
    List.filter (fun (_, l) -> l.C.ii = Some l.C.mii) plain
  in
  let rest =
    List.filter (fun (_, l) -> l.C.ii <> Some l.C.mii) pipelined
  in
  let rest_eff =
    List.fold_left (fun a (_, l) -> a +. C.efficiency l) 0.0 rest
    /. float_of_int (max 1 (List.length rest))
  in
  let pct a b = 100.0 *. float_of_int a /. float_of_int (max 1 b) in
  emit "lower_bound"
    (Json.Obj
       [
         ("pipelined", Json.Int (List.length pipelined));
         ("at_bound", Json.Int (List.length at_bound));
         ("plain", Json.Int (List.length plain));
         ("plain_at_bound", Json.Int (List.length plain_at_bound));
         ("above_bound_mean_efficiency", Json.Float rest_eff);
       ]);
  Fmt.pr
    "  pipelined loops at the theoretical lower bound: %d/%d (%.0f%%)   [paper: 75%%]@.\
    \  loops without conditionals or recurrences at bound: %d/%d (%.0f%%)  [paper: 93%%]@.\
    \  average efficiency of above-bound loops: %.2f   [paper: 0.75]@."
    (List.length at_bound) (List.length pipelined)
    (pct (List.length at_bound) (List.length pipelined))
    (List.length plain_at_bound) (List.length plain)
    (pct (List.length plain_at_bound) (List.length plain))
    rest_eff

(* ------------------------------------------------------------------ *)
(* E6: code size                                                       *)
(* ------------------------------------------------------------------ *)

let table_code_size () =
  section "E6: Section 2.4 — code size of pipelined loops";
  let t =
    Table.create
      ~headers:
        [ "kernel"; "unpipelined"; "pipelined"; "ratio"; "trip"; "note" ]
      ~aligns:[ Table.L; R; R; R; L; L ]
  in
  let one name src trip note =
    let k = Kernel.mk name ~init:(Kernel.init_all_arrays ~seed:3) (Kernel.W2 src) in
    let piped = Kernel.run Machine.warp k in
    let local = Kernel.run ~config:C.local_only Machine.warp k in
    Table.add_row t
      [
        name ^ check_tag piped;
        string_of_int local.Kernel.code_size;
        string_of_int piped.Kernel.code_size;
        Printf.sprintf "%.1fx"
          (float_of_int piped.Kernel.code_size
          /. float_of_int (max 1 local.Kernel.code_size));
        trip;
        note;
      ]
  in
  one "saxpy-const"
    {|program s;
var x, y : array [0..127] of float; k : int;
begin for k := 0 to 127 do y[k] := 2.5 * x[k] + y[k]; end.|}
    "known" "single version";
  one "saxpy-runtime"
    {|program s;
var x, y : array [0..127] of float; n, k : int;
begin
  n := 100;
  for k := 0 to n do y[k] := 2.5 * x[k] + y[k];
end.|}
    "run-time" "two versions (Section 2.4 scheme)";
  one "conv1d-const"
    {|program s;
var x, y : array [0..135] of float; k : int;
begin for k := 0 to 127 do
  y[k] := 0.25*x[k] + 0.5*x[k+1] + 0.25*x[k+2]; end.|}
    "known" "single version";
  emit "code_size" (json_of_table t);
  Fmt.pr "%a" Table.pp t;
  Fmt.pr
    "@.  (paper: within 3x for compile-time trip counts, within 4x with@.\
    \   the two-version scheme; the steady state alone stays short)@."

(* ------------------------------------------------------------------ *)
(* E7: modulo variable expansion ablation                               *)
(* ------------------------------------------------------------------ *)

let table_mve () =
  section "E7: modulo variable expansion ablation (DESIGN.md 5.2)";
  let t =
    Table.create
      ~headers:[ "kernel"; "mode"; "II"; "unroll"; "code"; "cycles" ]
      ~aligns:[ Table.L; L; R; R; R; R ]
  in
  let kernels = [ Livermore.k1_hydro; Livermore.k7_eos; Livermore.k12_first_diff ] in
  List.iter
    (fun k ->
      List.iter
        (fun (mode_name, mode) ->
          let config = { C.default with C.mve_mode = mode } in
          let m = Kernel.run ~config Machine.warp k in
          let lr =
            List.find_opt
              (fun (l : C.loop_report) -> l.C.status = C.Pipelined)
              m.Kernel.loops
          in
          Table.add_row t
            [
              m.Kernel.kernel ^ check_tag m;
              mode_name;
              (match lr with
              | Some l -> (
                match l.C.ii with Some s -> string_of_int s | None -> "-")
              | None -> "-");
              (match lr with
              | Some l -> string_of_int l.C.unroll
              | None -> "-");
              string_of_int m.Kernel.code_size;
              string_of_int m.Kernel.cycles;
            ])
        [ ("max-q (paper)", Sp_core.Mve.Max_q);
          ("lcm", Sp_core.Mve.Lcm);
          ("off", Sp_core.Mve.Off) ])
    kernels;
  emit "mve" (json_of_table t);
  Fmt.pr "%a" Table.pp t;
  Fmt.pr
    "@.  (off = carried anti-dependences kept: the II degrades to the@.\
    \   variable lifetimes; lcm unrolls more for the same II — the code@.\
    \   size argument of Section 2.3)@."

(* ------------------------------------------------------------------ *)
(* E8: hierarchical reduction ablation                                  *)
(* ------------------------------------------------------------------ *)

let table_hier () =
  section "E8: hierarchical reduction — conditionals and short loops";
  (* (a) a conditional loop: pipelined vs local compaction *)
  let k =
    Kernel.mk "cond-loop" ~init:(Kernel.init_all_arrays ~seed:5)
      (Kernel.W2
         {|program c;
var x, y : array [0..199] of float; t : float; k : int;
begin
  for k := 0 to 191 do begin
    if x[k] > 1.5 then t := x[k] * 2.0;
    else t := x[k] * 0.5;
    y[k] := t + 0.25 * (x[k+1] + x[k+2]);
  end
end.|})
  in
  let f, piped, local = Kernel.speedup Machine.warp k in
  Fmt.pr
    "  loop with conditional: %d cycles pipelined vs %d compacted (%.2fx)%s@."
    piped.Kernel.cycles local.Kernel.cycles f (check_tag piped);
  (* (b) short-vector penalty: total cycles for a fixed amount of work
     split into loops of decreasing trip count *)
  let t =
    Table.create
      ~headers:[ "trip count"; "loops"; "cycles"; "cycles/iteration" ]
      ~aligns:[ Table.R; R; R; R ]
  in
  List.iter
    (fun trip ->
      let loops = 192 / trip in
      let body =
        String.concat "\n"
          (List.init loops (fun l ->
               Printf.sprintf
                 "  for k := %d to %d do y[k] := 2.0 * x[k] + y[k];"
                 (l * trip)
                 (((l + 1) * trip) - 1)))
      in
      let src =
        Printf.sprintf
          {|program s;
var x, y : array [0..191] of float; k : int;
begin
%s
end.|}
          body
      in
      let k = Kernel.mk "short" ~init:(Kernel.init_all_arrays ~seed:6) (Kernel.W2 src) in
      let m = Kernel.run Machine.warp k in
      Table.add_row t
        [
          string_of_int trip;
          string_of_int loops;
          string_of_int m.Kernel.cycles ^ check_tag m;
          Printf.sprintf "%.2f" (float_of_int m.Kernel.cycles /. 192.0);
        ])
    [ 192; 96; 48; 24; 12 ];
  emit "hier" (json_of_table t);
  Fmt.pr "%a" Table.pp t;
  Fmt.pr
    "@.  (same 192 iterations of work; shorter vectors pay relatively more@.\
    \   start-up — hierarchical reduction lets prologs/epilogs overlap@.\
    \   surrounding scalar code, keeping the penalty bounded)@.";
  (* (c) extension ablation: branches (the paper) vs if-conversion *)
  let src =
    {|program c;
var x, y : array [0..199] of float; t : float;
begin
  for k := 0 to 191 do begin
    if x[k] > 1.5 then t := x[k] * 2.0;
    else t := x[k] * 0.5;
    y[k] := t;
  end
end.|}
  in
  let measure name p =
    let k =
      Kernel.mk name ~init:(Kernel.init_all_arrays ~seed:5)
        (Kernel.Ir (fun () -> p))
    in
    Kernel.run Machine.warp k
  in
  let br = measure "branches" (Sp_lang.Lower.compile_source src) in
  let sel =
    measure "if-converted"
      (Sp_lang.Lower.compile_source ~if_convert:true src)
  in
  Fmt.pr
    "@.  conditional lowering: %d cycles with branches (the paper)%s vs@.\
    \  %d cycles if-converted to selects (extension)%s — selects dodge the@.\
    \  sequencer serialization at the cost of executing both sides@."
    br.Kernel.cycles (check_tag br) sel.Kernel.cycles (check_tag sel)

(* ------------------------------------------------------------------ *)
(* E9: datapath scaling                                                 *)
(* ------------------------------------------------------------------ *)

let table_scale () =
  section "E9: Section 6 — scaling the datapath";
  let t =
    Table.create
      ~headers:[ "kernel"; "width 1"; "width 2"; "width 4"; "limited by" ]
      ~aligns:[ Table.L; R; R; R; L ]
  in
  let kernels =
    [ (Livermore.k7_eos, "resources (parallel iterations)");
      (Livermore.k12_first_diff, "resources (parallel iterations)");
      (Livermore.k5_tridiag, "recurrence cycle (does not scale)");
      (Livermore.k11_first_sum, "recurrence cycle (does not scale)") ]
  in
  List.iter
    (fun (k, why) ->
      let mflops_at width =
        let m = Kernel.run (Machine.warp_scaled ~width) k in
        Printf.sprintf "%.2f%s" m.Kernel.mflops (check_tag m)
      in
      Table.add_row t
        [ k.Kernel.name; mflops_at 1; mflops_at 2; mflops_at 4; why ])
    kernels;
  emit "scale" (json_of_table t);
  Fmt.pr "%a" Table.pp t;
  Fmt.pr
    "@.  (the paper's closing observation: independent-iteration loops scale@.\
    \   with the hardware; recurrence-bound loops are pinned by their cycle)@."

(* ------------------------------------------------------------------ *)
(* linear vs binary search ablation                                     *)
(* ------------------------------------------------------------------ *)

let table_search () =
  section "E7b: linear vs binary interval search (DESIGN.md 5.1)";
  let t =
    Table.create
      ~headers:[ "kernel"; "linear II"; "binary II"; "note" ]
      ~aligns:[ Table.L; R; R; L ]
  in
  List.iter
    (fun k ->
      let ii_of search =
        let config = { C.default with C.search } in
        let m = Kernel.run ~config Machine.warp k in
        List.fold_left
          (fun acc (l : C.loop_report) ->
            match l.C.ii with
            | Some s -> (match acc with None -> Some s | a -> a)
            | None -> acc)
          None m.Kernel.loops
      in
      let li = ii_of Sp_core.Modsched.Linear in
      let bi = ii_of Sp_core.Modsched.Binary in
      let str = function Some s -> string_of_int s | None -> "-" in
      Table.add_row t
        [
          k.Kernel.name;
          str li;
          str bi;
          (if li = bi then "same"
           else "binary missed the optimum (non-monotonic schedulability)");
        ])
    [ Livermore.k1_hydro; Livermore.k5_tridiag; Livermore.k7_eos;
      Livermore.k17_conditional; Livermore.k21_matmul ];
  emit "search" (json_of_table t);
  Fmt.pr "%a" Table.pp t

(* ------------------------------------------------------------------ *)
(* E11: software pipelining vs source unrolling (Section 5.1)           *)
(* ------------------------------------------------------------------ *)

let table_unroll () =
  section "E11: Section 5.1 — software pipelining vs source unrolling";
  let src =
    {|program s;
var x, y : array [0..199] of float;
begin
  for k := 0 to 191 do
    y[k] := 2.5 * x[k] + 1.5 * x[k+1] + y[k];
end.|}
  in
  let t =
    Table.create
      ~headers:[ "compilation"; "cycles"; "code"; "vs unroll-1" ]
      ~aligns:[ Table.L; R; R; R ]
  in
  let measure name p config =
    let k =
      Kernel.mk name ~init:(Kernel.init_all_arrays ~seed:11)
        (Kernel.Ir (fun () -> p))
    in
    Kernel.run ~config Machine.warp k
  in
  let base =
    measure "unroll-1" (Sp_lang.Lower.compile_source src) C.local_only
  in
  let row name (m : Kernel.measurement) =
    Table.add_row t
      [
        name ^ check_tag m;
        string_of_int m.Kernel.cycles;
        string_of_int m.Kernel.code_size;
        Printf.sprintf "%.2fx"
          (float_of_int base.Kernel.cycles /. float_of_int m.Kernel.cycles);
      ]
  in
  row "compact only (unroll 1)" base;
  List.iter
    (fun k ->
      row
        (Printf.sprintf "unroll %d + compact" k)
        (measure
           (Printf.sprintf "unroll-%d" k)
           (Sp_lang.Unroll.compile_source ~k src)
           C.local_only))
    [ 2; 4; 8 ];
  row "software pipelined"
    (measure "pipelined" (Sp_lang.Lower.compile_source src) C.default);
  emit "unroll" (json_of_table t);
  Fmt.pr "%a" Table.pp t;
  Fmt.pr
    "@.  (unrolling approaches but cannot reach the pipelined throughput:@.\
    \   the hardware pipelines drain at every unrolled-group boundary,@.\
    \   while code size grows with the unroll factor — Section 5.1)@."

(* ------------------------------------------------------------------ *)
(* E12: heuristic vs exact — the optimality gap                         *)
(* ------------------------------------------------------------------ *)

(* Per-loop total of one work counter in a collected profile. *)
let loop_counter prof l c =
  List.fold_left
    (fun acc ((l', _), cs) ->
      if l' = l then
        acc
        + List.fold_left (fun a (c', n) -> if c' = c then a + n else a) 0 cs
      else acc)
    0
    (Sp_obs.Cost.cells prof)

(** Measure the paper's Section 4.1 near-optimality claim directly:
    every pipelined loop's heuristic interval is certified against the
    exact modulo scheduler ([Sp_opt]), with the search's work counters
    (nodes expanded, nogood-bank hits, backjumps) read off the
    {!Sp_obs.Cost} profile — deterministic counts, so the table is
    byte-identical at any [--jobs] width. [quick] caps the fuel and
    trims the kernel list for CI. *)
let table_optimal ?(quick = false) ~jobs () =
  section
    (if quick then
       "E12: optimality gap — heuristic II vs exact II (quick, budget-capped)"
     else "E12: optimality gap — heuristic II vs exact II (Livermore)");
  let fuel = if quick then 200_000 else Sp_opt.Certify.default_fuel in
  let config =
    { C.default with C.jobs; certifier = Some (Sp_opt.Certify.hook ~fuel ()) }
  in
  let t =
    Table.create
      ~headers:
        [ "kernel"; "loop"; "mii"; "heur II"; "exact II"; "certificate";
          "search probes/fuel"; "cert fuel"; "nodes"; "nogood hits";
          "backjumps" ]
      ~aligns:[ Table.L; R; R; R; R; L; R; R; R; R; R ]
  in
  let n_opt = ref 0 and n_imp = ref 0 and n_unk = ref 0 in
  let count_loop (lr : C.loop_report) =
    match lr.C.cert with
    | Some (C.Cert_optimal _) -> incr n_opt
    | Some (C.Cert_improved _) -> incr n_imp
    | Some (C.Cert_unknown _) -> incr n_unk
    | None -> ()
  in
  let loop_rows prof name (lr : C.loop_report) =
    match lr.C.ii with
    | None -> ()
    | Some ii ->
      count_loop lr;
      let heur_ii, exact_ii, cert_s, cert_fuel =
        match lr.C.cert with
        | Some (C.Cert_optimal { spent }) ->
          (ii, string_of_int ii, "optimal", string_of_int spent)
        | Some (C.Cert_improved { heur_ii; spent }) ->
          (heur_ii, string_of_int ii, "improved", string_of_int spent)
        | Some (C.Cert_unknown { proven_below; spent }) ->
          ( ii,
            Printf.sprintf "unknown (>=%d)" proven_below,
            "unknown (budget out)",
            string_of_int spent )
        | None -> (ii, "-", "-", "-")
      in
      let cnt c = string_of_int (loop_counter prof lr.C.l_id c) in
      Table.add_row t
        [
          name;
          string_of_int lr.C.l_id;
          string_of_int lr.C.mii;
          string_of_int heur_ii;
          exact_ii;
          cert_s;
          Printf.sprintf "%d/%d" lr.C.probed lr.C.fuel_spent;
          cert_fuel;
          cnt Sp_obs.Cost.Exact_node;
          cnt Sp_obs.Cost.Exact_nogood_hit;
          cnt Sp_obs.Cost.Exact_backjump;
        ]
  in
  let kernels =
    if quick then
      [ Livermore.k1_hydro; Livermore.k5_tridiag; Livermore.k7_eos;
        Livermore.k12_first_diff ]
    else Livermore.all
  in
  let cost_was = Sp_obs.Cost.enabled () in
  if not cost_was then Sp_obs.Cost.enable ();
  Fun.protect
    ~finally:(fun () -> if not cost_was then Sp_obs.Cost.disable ())
  @@ fun () ->
  List.iter
    (fun k ->
      let m, prof =
        Sp_obs.Cost.collect (fun () -> Kernel.run ~config Machine.warp k)
      in
      List.iter (loop_rows prof (m.Kernel.kernel ^ check_tag m)) m.Kernel.loops)
    kernels;
  emit (if quick then "optimal_quick" else "optimal") (json_of_table t);
  Fmt.pr "%a" Table.pp t;
  let certified = !n_opt + !n_imp + !n_unk in
  Fmt.pr
    "@.  certified loops: %d   optimal: %d   improved: %d   unknown: %d@.\
    \  (every interval below a certified-optimal II is proven@.\
    \   infeasible by exhaustive residue search — no external solver;@.\
    \   'unknown' rows record how far the proof got before the budget)@."
    certified !n_opt !n_imp !n_unk;
  if not quick then begin
    (* the 72-program population, compile-only: the measured form of
       the paper's "near-optimal in practice" *)
    let p_opt = ref 0 and p_imp = ref 0 and p_unk = ref 0 and p_pip = ref 0 in
    List.iter
      (fun (e : Suite.entry) ->
        let p = Kernel.program e.Suite.kernel in
        let r = C.program ~config Machine.warp p in
        List.iter
          (fun (lr : C.loop_report) ->
            match lr.C.cert with
            | Some (C.Cert_optimal _) -> incr p_pip; incr p_opt
            | Some (C.Cert_improved _) -> incr p_pip; incr p_imp
            | Some (C.Cert_unknown _) -> incr p_pip; incr p_unk
            | None -> ())
          r.C.loops)
      Suite.all;
    Fmt.pr
      "@.  72-program population: %d certified loops — %d optimal \
       (%.0f%%), %d improved, %d unknown@.\
      \  [paper Section 4.1: the heuristic is near-optimal; measured@.\
      \   optimality rate above]@."
      !p_pip !p_opt
      (100.0 *. float_of_int !p_opt /. float_of_int (max 1 !p_pip))
      !p_imp !p_unk
  end

(* ------------------------------------------------------------------ *)
(* E21: conflict learning A/B over the generated population             *)
(* ------------------------------------------------------------------ *)

(** E21: the learning ablation. Every certified loop of the generated
    population is solved three ways — chronological search (learning
    off), conflict-learned search (learning on), and the 4-member
    proof portfolio — and the table reports per-loop verdicts, nodes
    expanded and certifier fuel for the A/B pair, plus the node
    reduction factor. All numbers are deterministic work counts, so
    the table and artifact are byte-identical at any [--jobs] width;
    the portfolio column is a live cross-check (a mismatch against the
    single-member verdict fails the invocation). [quick] trims the
    population and caps the fuel for CI. *)
let table_optimal_learning ?(quick = false) ~jobs () =
  section
    (if quick then
       "E21: conflict learning A/B — population subset (quick, \
        budget-capped)"
     else "E21: conflict learning A/B — 72-program population");
  let fuel = if quick then 200_000 else Sp_opt.Certify.default_fuel in
  let entries =
    if quick then
      List.filteri (fun i _ -> i < 12) Sp_kernels.Suite.all
    else Sp_kernels.Suite.all
  in
  let cert_desc (lr : C.loop_report) =
    match lr.C.cert with
    | Some (C.Cert_optimal _) ->
      Printf.sprintf "optimal@%d" (Option.value ~default:(-1) lr.C.ii)
    | Some (C.Cert_improved { heur_ii; _ }) ->
      Printf.sprintf "improved:%d->%d" heur_ii
        (Option.value ~default:(-1) lr.C.ii)
    | Some (C.Cert_unknown { proven_below; _ }) ->
      Printf.sprintf "unknown>=%d" proven_below
    | None -> "-"
  in
  let cert_spent (lr : C.loop_report) =
    match lr.C.cert with
    | Some (C.Cert_optimal { spent })
    | Some (C.Cert_improved { spent; _ })
    | Some (C.Cert_unknown { spent; _ }) -> spent
    | None -> 0
  in
  (* one full population pass under one solver configuration: per
     certified loop, (name, loop, mii, cert tag, cert fuel, nodes,
     nogood hits, backjumps) *)
  let pass ~learn ~portfolio =
    let config =
      {
        C.default with
        C.jobs;
        certifier = Some (Sp_opt.Certify.hook ~fuel ~learn ~portfolio ());
      }
    in
    List.concat_map
      (fun (e : Suite.entry) ->
        let p = Kernel.program e.Suite.kernel in
        let r, prof =
          Sp_obs.Cost.collect (fun () -> C.program ~config Machine.warp p)
        in
        List.filter_map
          (fun (lr : C.loop_report) ->
            if lr.C.cert = None then None
            else
              Some
                ( e.Suite.kernel.Kernel.name,
                  lr.C.l_id,
                  lr.C.mii,
                  cert_desc lr,
                  cert_spent lr,
                  loop_counter prof lr.C.l_id Sp_obs.Cost.Exact_node,
                  loop_counter prof lr.C.l_id Sp_obs.Cost.Exact_nogood_hit,
                  loop_counter prof lr.C.l_id Sp_obs.Cost.Exact_backjump ))
          r.C.loops)
      entries
  in
  let cost_was = Sp_obs.Cost.enabled () in
  if not cost_was then Sp_obs.Cost.enable ();
  Fun.protect
    ~finally:(fun () -> if not cost_was then Sp_obs.Cost.disable ())
  @@ fun () ->
  let off = pass ~learn:false ~portfolio:1 in
  let on = pass ~learn:true ~portfolio:1 in
  let p4 = pass ~learn:true ~portfolio:4 in
  let t =
    Table.create
      ~headers:
        [ "program"; "loop"; "mii"; "off: cert"; "off: nodes"; "off: fuel";
          "on: cert"; "on: nodes"; "on: fuel"; "nogood hits"; "backjumps";
          "node redn"; "p4: cert" ]
      ~aligns:
        [ Table.L; R; R; L; R; R; L; R; R; R; R; R; L ]
  in
  let undecided tag =
    String.length tag >= 7 && String.sub tag 0 7 = "unknown"
  in
  let n = List.length on in
  let proven tags =
    List.length (List.filter (fun (_, _, _, c, _, _, _, _) -> not (undecided c)) tags)
  in
  let disagree = ref [] in
  let reductions = ref [] in
  List.iter2
    (fun ((name, l, mii, c_off, f_off, n_off, _, _) as _row_off)
         (name', l', _, c_on, f_on, n_on, hits, bj) ->
      assert (name = name' && l = l');
      let _, _, _, c_p4, _, _, _, _ =
        List.find
          (fun (nm, ll, _, _, _, _, _, _) -> nm = name && ll = l)
          p4
      in
      (* the A/B searches must agree wherever both decide; the
         portfolio must agree with the single member outright *)
      if c_off <> c_on && (not (undecided c_off)) && not (undecided c_on)
      then disagree := Printf.sprintf "%s.%d: off %s / on %s" name l c_off c_on :: !disagree;
      if c_p4 <> c_on then
        disagree :=
          Printf.sprintf "%s.%d: portfolio-4 %s / portfolio-1 %s" name l c_p4
            c_on
          :: !disagree;
      let redn = float_of_int n_off /. float_of_int (max 1 n_on) in
      if undecided c_off && not (undecided c_on) then
        reductions := redn :: !reductions;
      Table.add_row t
        [
          name; string_of_int l; string_of_int mii;
          c_off; string_of_int n_off; string_of_int f_off;
          c_on; string_of_int n_on; string_of_int f_on;
          string_of_int hits; string_of_int bj;
          Printf.sprintf "%.1fx" redn;
          c_p4;
        ])
    off on;
  Fmt.pr "%a" Table.pp t;
  (* median node reduction over the loops the chronological search
     could not decide — the loops learning must rescue *)
  let median =
    match List.sort compare !reductions with
    | [] -> None
    | l -> Some (List.nth l (List.length l / 2))
  in
  Fmt.pr
    "@.  certified loops: %d   decided without learning: %d   with \
     learning: %d@."
    n (proven off) (proven on);
  (match median with
  | Some m ->
    Fmt.pr
      "  median node reduction on previously-unproven loops: %.0fx (%d \
       loop(s))@."
      m (List.length !reductions)
  | None -> Fmt.pr "  (no previously-unproven loops in this population)@.");
  emit
    (if quick then "optimal-learning-quick" else "optimal-learning")
    (Json.Obj
       [
         ("table", json_of_table t);
         ("loops", Json.Int n);
         ("proven_off", Json.Int (proven off));
         ("proven_on", Json.Int (proven on));
         ( "median_reduction",
           match median with Some m -> Json.Float m | None -> Json.Null );
         ("disagreements", Json.Int (List.length !disagree));
       ]);
  List.iter (fun d -> Fmt.pr "  DISAGREE %s@." d) (List.rev !disagree);
  if !disagree <> [] then begin
    Fmt.pr "@.optimal-learning: solver configurations disagree@.";
    exit_status := 1
  end
  else if (not quick) && proven on < n then begin
    Fmt.pr
      "@.optimal-learning: %d loop(s) undecided at default fuel with \
       learning on@."
      (n - proven on);
    exit_status := 1
  end

(* ------------------------------------------------------------------ *)
(* E13: pipeline profile over the Livermore kernels                     *)
(* ------------------------------------------------------------------ *)

(** The schedule-quality profile of every Livermore kernel: achieved
    interval vs. its lower bounds (with the exact certifier's verdict
    under a capped budget), plus per-resource utilization of the
    simulated execution. The JSON artifact of this table is the
    repo-root BENCH_pipeline.json (EXPERIMENTS.md E13). *)
(* ---- per-loop attribution fields (E13 artifact, --attribute) ------ *)

(** Rejecting cause of a placement failure, as a short stable string. *)
let fail_reason = function
  | Sp_obs.Explain.Window_empty _ -> "window empty"
  | Sp_obs.Explain.No_slot { resource; _ } -> resource ^ " residue"
  | Sp_obs.Explain.No_wrap _ -> "wrap"

(** Extra fields joined onto each pipeline-artifact loop object so
    [--compare --attribute] can name the cause of a regression: which
    interval-bound constraint binds (and on what), per-probed-interval
    placement-failure counts with the rejecting residue, and the
    deterministic work-cost counters. All pure functions of the
    compilation — the artifact stays byte-stable. *)
let loop_attribution ~events ~cost l_id =
  let mine f =
    List.filter_map (fun (l, e) -> if l = l_id then f e else None) events
  in
  let bounds =
    match
      mine (function
        | Sp_obs.Explain.Bounds { ctl_bound; binding; critical; _ } ->
          Some (ctl_bound, binding, critical)
        | _ -> None)
    with
    | (ctl, binding, critical) :: _ ->
      [
        ("ctl_bound", Json.Int ctl);
        ("binding", Json.Str binding);
        ("binding_detail", Json.Str critical);
      ]
    | [] -> []
  in
  let fails =
    mine (function
      | Sp_obs.Explain.Probe_fail { s; fail; _ } ->
        Some (s, fail_reason fail)
      | _ -> None)
  in
  let probe_fails =
    List.map
      (fun s ->
        let fs = List.filter (fun (s', _) -> s' = s) fails in
        (* the last failure is the one that abandoned this interval *)
        let reason = snd (List.nth fs (List.length fs - 1)) in
        Json.Obj
          [
            ("ii", Json.Int s);
            ("fails", Json.Int (List.length fs));
            ("reason", Json.Str reason);
          ])
      (List.sort_uniq compare (List.map fst fails))
  in
  let cells = Sp_obs.Cost.cells cost in
  let counters =
    List.map
      (fun c ->
        ( Sp_obs.Cost.counter_name c,
          Json.Int
            (List.fold_left
               (fun acc ((l, _), cs) ->
                 if l = l_id then
                   acc + Option.value ~default:0 (List.assoc_opt c cs)
                 else acc)
               0 cells) ))
      Sp_obs.Cost.all_counters
  in
  bounds
  @ [
      ("probe_fails", Json.List probe_fails);
      ("cost_total", Json.Int (Sp_obs.Cost.loop_total cost ~loop:l_id));
      ("cost", Json.Obj counters);
    ]

(** [Profile.to_json] output with the attribution fields appended to
    every loop object (joined on the [loop] id) and the kernel's total
    work-unit count at top level. *)
let augment_kernel_json kjson ~events ~cost =
  match kjson with
  | Json.Obj kvs ->
    Json.Obj
      (List.map
         (fun (k, v) ->
           match (k, v) with
           | "loops", Json.List ls ->
             ( k,
               Json.List
                 (List.map
                    (function
                      | Json.Obj lkvs ->
                        let id =
                          match List.assoc_opt "loop" lkvs with
                          | Some (Json.Int i) -> i
                          | _ -> -1
                        in
                        Json.Obj
                          (lkvs @ loop_attribution ~events ~cost id)
                      | lj -> lj)
                    ls) )
           | _ -> (k, v))
         kvs
      @ [ ("cost_total", Json.Int (Sp_obs.Cost.total cost)) ])
  | j -> j

let table_pipeline () =
  section
    "E13: pipeline profile — achieved II vs bounds and FU utilization \
     (Livermore)";
  let config =
    {
      C.default with
      C.certifier = Some (Sp_opt.Certify.hook ~fuel:400_000 ());
    }
  in
  let t =
    Table.create
      ~headers:
        [ "kernel"; "loop"; "II"; "res/rec mii"; "optimal"; "eff";
          "overhead"; "fadd"; "fmul"; "mem"; "status" ]
      ~aligns:[ Table.L; R; R; R; R; R; R; R; R; R; L ]
  in
  let pct x = Printf.sprintf "%.0f%%" (100. *. x) in
  let util u name =
    match List.assoc_opt name u with Some x -> pct x | None -> "-"
  in
  let explain_was = Sp_obs.Explain.enabled () in
  let cost_was = Sp_obs.Cost.enabled () in
  if not explain_was then Sp_obs.Explain.enable ();
  if not cost_was then Sp_obs.Cost.enable ();
  let reports =
    Fun.protect
      ~finally:(fun () ->
        if not explain_was then Sp_obs.Explain.disable ();
        if not cost_was then Sp_obs.Cost.disable ())
    @@ fun () ->
    List.map
      (fun k ->
        let (meas, events), cost =
          Sp_obs.Cost.collect (fun () ->
              Sp_obs.Explain.collect (fun () ->
                  Kernel.run ~config Machine.warp k))
        in
        let r = Kernel.profile Machine.warp meas in
        List.iter
          (fun (l : Sp_obs.Profile.loop) ->
            Table.add_row t
              [
                meas.Kernel.kernel ^ check_tag meas;
                string_of_int l.Sp_obs.Profile.lp_id;
                (match l.Sp_obs.Profile.lp_achieved_ii with
                | Some ii -> string_of_int ii
                | None -> "-");
                Printf.sprintf "%d/%d" l.Sp_obs.Profile.lp_res_mii
                  l.Sp_obs.Profile.lp_rec_mii;
                (match l.Sp_obs.Profile.lp_optimal_ii with
                | Some ii -> string_of_int ii
                | None -> "?");
                Printf.sprintf "%.2f" l.Sp_obs.Profile.lp_efficiency;
                Printf.sprintf "%.2f" l.Sp_obs.Profile.lp_overhead;
                util r.Sp_obs.Profile.r_utilization "fadd";
                util r.Sp_obs.Profile.r_utilization "fmul";
                util r.Sp_obs.Profile.r_utilization "mem";
                l.Sp_obs.Profile.lp_status;
              ])
          r.Sp_obs.Profile.r_loops;
        augment_kernel_json (Sp_obs.Profile.to_json r) ~events ~cost)
      Livermore.all
  in
  emit "pipeline" (Json.Obj [ ("kernels", Json.List reports) ]);
  Fmt.pr "%a" Table.pp t;
  Fmt.pr
    "@.  (utilization columns are whole-execution busy fractions from the@.\
    \   cycle-accurate simulator; 'optimal' is the exact certifier's@.\
    \   verdict under a 400k-fuel budget, '?' = budget exhausted or@.\
    \   loop not pipelined; see BENCH_pipeline.json for the full per-@.\
    \   kernel reports including MRT occupancy and register pressure)@."

(* ------------------------------------------------------------------ *)
(* E20: deterministic work-cost accounting                              *)
(* ------------------------------------------------------------------ *)

(** Compile-only cost profiles of the Livermore suite. Every number is
    a deterministic work-unit count ({!Sp_obs.Cost}) — no wall clock —
    so the artifact is byte-identical across runs, machines, and any
    [--jobs] width (the shard-merge identity this table exists to
    pin). *)
let table_cost ~jobs () =
  section
    (Fmt.str
       "E20: work-cost accounting (Livermore, compile only, %d job(s))"
       jobs);
  let config = { C.default with C.jobs } in
  (* phases whose steps bump work counters today; the artifact still
     carries every cell, so a counter added to mve/emit/validate later
     shows up there without a schema change *)
  let shown =
    [ Sp_obs.Cost.P_ddg; P_compact; P_bounds; P_search; P_other ]
  in
  let t =
    Table.create
      ~headers:
        ("kernel" :: "total"
        :: List.map Sp_obs.Cost.phase_name shown)
      ~aligns:(Table.L :: List.init (1 + List.length shown) (fun _ -> Table.R))
  in
  let phase_total prof ph =
    List.fold_left
      (fun acc ((_, p), cs) ->
        if p = ph then
          acc + List.fold_left (fun a (_, n) -> a + n) 0 cs
        else acc)
      0
      (Sp_obs.Cost.cells prof)
  in
  let cost_was = Sp_obs.Cost.enabled () in
  if not cost_was then Sp_obs.Cost.enable ();
  let profiles =
    Fun.protect
      ~finally:(fun () -> if not cost_was then Sp_obs.Cost.disable ())
    @@ fun () ->
    List.map
      (fun k ->
        let p = Kernel.program k in
        let (_ : C.result), prof =
          Sp_obs.Cost.collect (fun () -> C.program ~config Machine.warp p)
        in
        Table.add_row t
          (k.Kernel.name
          :: string_of_int (Sp_obs.Cost.total prof)
          :: List.map
               (fun ph -> string_of_int (phase_total prof ph))
               shown);
        (k.Kernel.name, prof))
      Livermore.all
  in
  let grand =
    List.fold_left
      (fun acc (_, prof) -> Sp_obs.Cost.merge acc prof)
      Sp_obs.Cost.empty profiles
  in
  emit "cost"
    (Json.Obj
       [
         ( "kernels",
           Json.List
             (List.map
                (fun (name, prof) ->
                  Json.Obj
                    [
                      ("kernel", Json.Str name);
                      ("cost", Sp_obs.Cost.to_json prof);
                    ])
                profiles) );
         ( "totals",
           Json.Obj
             (List.map
                (fun (c, n) -> (Sp_obs.Cost.counter_name c, Json.Int n))
                (Sp_obs.Cost.counter_totals grand)) );
       ]);
  Fmt.pr "%a" Table.pp t;
  Fmt.pr
    "@.  (work units, not cycles: MRT probes, Spath relaxations, heap@.\
    \   ops, DDG edges — identical for any --jobs width; suite total@.\
    \   %d units; see BENCH --emit-json artifacts/cost for per-loop@.\
    \   per-phase cells)@."
    (Sp_obs.Cost.total grand)

(* ------------------------------------------------------------------ *)
(* E14: tracing overhead smoke                                          *)
(* ------------------------------------------------------------------ *)

(** Guard the zero-cost-when-disabled contract: with tracing off a
    compile records no events, and its time stays within noise of the
    traced compile (generous bound — this is a smoke against gross
    regressions such as unconditional attribute allocation, not a
    microbenchmark). *)
let table_trace_overhead () =
  section "E14: tracing overhead smoke (disabled tracing must be free)";
  let p = Kernel.program Livermore.k7_eos in
  let compile () = ignore (C.program Machine.warp p) in
  let time n f =
    let t0 = Sys.time () in
    for _ = 1 to n do f () done;
    Sys.time () -. t0
  in
  let iters = 30 in
  ignore (time 3 compile) (* warm the allocator and caches *);
  Sp_obs.Trace.enable ();
  let t_on = time iters compile in
  let ev_on = List.length (Sp_obs.Trace.events ()) in
  Sp_obs.Trace.disable ();
  Sp_obs.Trace.enable ();
  (* enable clears the buffer *)
  Sp_obs.Trace.disable ();
  let t_off = time iters compile in
  let ev_off = List.length (Sp_obs.Trace.events ()) in
  (* same contract for the decision log and the render views: with both
     disabled (the default above) the compile must record nothing and
     build no views; enabled, both must produce their artifacts *)
  let xp_off = List.length (Sp_obs.Explain.events ()) in
  let r = C.program Machine.warp p in
  let views_off =
    List.length (List.filter (fun lr -> lr.C.view <> None) r.C.loops)
  in
  Sp_obs.Explain.enable ();
  Sp_obs.Render.enable ();
  let r = C.program Machine.warp p in
  let xp_on = List.length (Sp_obs.Explain.events ()) in
  let views_on =
    List.length (List.filter (fun lr -> lr.C.view <> None) r.C.loops)
  in
  Sp_obs.Explain.disable ();
  Sp_obs.Render.disable ();
  (* the service telemetry layer obeys the same contract: with
     [~telemetry:false] a request advances no sequence clock and the
     status snapshot carries no series; an untraced request on a
     telemetry-enabled service records no trace events; and the
     telemetry-off request path stays within noise of the on path *)
  let module Service = Sp_serve.Service in
  let src =
    {|program smoke;
var a : array [0..63] of float; k : int;
begin for k := 0 to 63 do a[k] := a[k] + 1.5; end.|}
  in
  let rq =
    Service.Compile
      { machine = "warp"; inject = None; trace = None; source = src }
  in
  let svc_off = Service.create ~cache_capacity:0 ~telemetry:false () in
  let t_tele_off = time iters (fun () -> ignore (Service.handle svc_off rq)) in
  let seq_off = Service.telemetry_seq svc_off in
  let status_off_bare =
    match Json.of_string (Service.status_json svc_off) with
    | j ->
      Json.member "series" j = None
      && Json.member "telemetry" j = Some (Json.Bool false)
    | exception Json.Parse_error _ -> false
  in
  Service.close svc_off;
  let svc_on = Service.create ~cache_capacity:0 () in
  let t_tele_on = time iters (fun () -> ignore (Service.handle svc_on rq)) in
  let seq_on = Service.telemetry_seq svc_on in
  Service.close svc_on;
  let ev_service = List.length (Sp_obs.Trace.events ()) in
  (* the work-cost profiler obeys the same contract: disabled (the
     default), a compile records zero units and a tight loop over the
     counting entry point allocates nothing on the minor heap; enabled,
     the same compile records work. The allocation bound allows the few
     words [Gc.minor_words] itself boxes around the sample. *)
  Sp_obs.Cost.clear ();
  compile ();
  let cost_off = Sp_obs.Cost.total (Sp_obs.Cost.snapshot ()) in
  let w0 = Gc.minor_words () in
  for _ = 1 to 100_000 do
    Sp_obs.Cost.incr Sp_obs.Cost.Mrt_probe
  done;
  let cost_alloc = Gc.minor_words () -. w0 in
  let cost_zero_alloc = cost_alloc <= 64.0 in
  Sp_obs.Cost.enable ();
  compile ();
  let cost_on = Sp_obs.Cost.total (Sp_obs.Cost.snapshot ()) in
  Sp_obs.Cost.disable ();
  let ok =
    ev_off = 0 && ev_on > 0
    && t_off <= (2.0 *. t_on) +. 0.05
    && xp_off = 0 && xp_on > 0 && views_off = 0 && views_on > 0
    && seq_off = 0 && status_off_bare && seq_on = iters && ev_service = 0
    && t_tele_off <= (2.0 *. t_tele_on) +. 0.05
    && cost_off = 0 && cost_on > 0 && cost_zero_alloc
  in
  emit "trace_overhead"
    (Json.Obj
       [
         ("iters", Json.Int iters);
         ("events_enabled", Json.Int ev_on);
         ("events_disabled", Json.Int ev_off);
         ("explain_enabled", Json.Int xp_on);
         ("explain_disabled", Json.Int xp_off);
         ("views_enabled", Json.Int views_on);
         ("views_disabled", Json.Int views_off);
         ("telemetry_seq_disabled", Json.Int seq_off);
         ("telemetry_seq_enabled", Json.Int seq_on);
         ("service_untraced_events", Json.Int ev_service);
         ("cost_units_disabled", Json.Int cost_off);
         ("cost_units_enabled", Json.Int cost_on);
         ("cost_zero_alloc", Json.Bool cost_zero_alloc);
         ("ok", Json.Bool ok);
       ]);
  Fmt.pr
    "  %d compiles traced: %d events, %.3fs@.\
    \  %d compiles untraced: %d events, %.3fs@.\
    \  explain events on/off: %d/%d; render views on/off: %d/%d@.\
    \  %d service requests, telemetry off/on: %.3fs/%.3fs, seq %d/%d@.\
    \  cost units on/off: %d/%d; disabled counting allocated %.0f words@.\
    \  trace-overhead: %s@."
    iters ev_on t_on iters ev_off t_off xp_on xp_off views_on views_off
    iters t_tele_off t_tele_on seq_off seq_on cost_on cost_off cost_alloc
    (if ok then "ok" else "FAILED");
  if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* E16: compile throughput — the parallel per-loop driver               *)
(* ------------------------------------------------------------------ *)

(** Throughput of the compiler itself over a corpus of independent
    innermost loops (random [Gen] shapes as sibling top-level loops of
    one program), compiled at increasing [jobs]. Wall-clock times and
    speedups go to stdout only; the JSON artifact carries the
    deterministic facts — corpus shape, whether every job count
    produced byte-identical output, and the [jobs = 1] per-loop
    results — so the document stays byte-stable across runs and
    machines. Fails hard (exit 1) if any job count changes the output:
    parallel compilation must be invisible in the artifacts. *)
let table_compile_speed ?(quick = false) () =
  section
    (if quick then
       "E16: compile throughput — parallel per-loop driver (quick)"
     else "E16: compile throughput — parallel per-loop driver");
  let n_loops = if quick then 16 else 64 in
  let jobs_list = if quick then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let reps = if quick then 2 else 5 in
  let spec_of i =
    {
      Gen.seed = (7 * i) + 1;
      trip = [| 17; 40; 61; 5 |].(i mod 4);
      n_stmts = 6 + (i mod 6);
      use_if = i mod 3 = 0;
      use_accum = i mod 2 = 0;
      use_chan = false;
      carried_store = i mod 5 = 0;
      empty_body = false;
      maxlat = i mod 7 = 0;
    }
  in
  let specs = List.init n_loops spec_of in
  let fingerprint = C.fingerprint in
  (* compiling draws register/op ids from the program's supplies, so
     every job count gets a freshly built — hence identical — corpus *)
  let compile ~jobs =
    let p, _, _ = Gen.build_many specs in
    let config = { C.default with C.jobs = jobs } in
    let t0 = Monotonic_clock.now () in
    let r = C.program ~config Machine.warp p in
    let t1 = Monotonic_clock.now () in
    (r, Int64.to_float (Int64.sub t1 t0) /. 1e9)
  in
  ignore (compile ~jobs:1) (* warm the allocator *);
  let t =
    Table.create
      ~headers:[ "jobs"; "wall (s)"; "speedup"; "output" ]
      ~aligns:[ Table.R; R; R; L ]
  in
  let base = ref None in
  let base_time = ref 1.0 in
  let identical_all = ref true in
  List.iter
    (fun jobs ->
      (* sum compile-only wall time over the repetitions (corpus
         construction stays outside the clock); every rep's output is
         checked against the jobs=1 fingerprint *)
      let secs = ref 0.0 in
      let same = ref true in
      for _ = 1 to reps do
        let r, s = compile ~jobs in
        secs := !secs +. s;
        let fp = fingerprint r in
        match !base with
        | None -> base := Some (r, fp)
        | Some (_, fp1) ->
          if fp <> fp1 then begin
            identical_all := false;
            same := false
          end
      done;
      if jobs = 1 then base_time := !secs;
      Table.add_row t
        [
          string_of_int jobs;
          Printf.sprintf "%.3f" !secs;
          Printf.sprintf "%.2fx" (!base_time /. !secs);
          (if !same then "identical" else "DIFFERS");
        ])
    jobs_list;
  let r1 = match !base with Some (r, _) -> r | None -> assert false in
  emit "compile_speed"
    (Json.Obj
       [
         ("corpus", Json.Int n_loops);
         ("jobs", Json.List (List.map (fun j -> Json.Int j) jobs_list));
         ("identical_across_j", Json.Bool !identical_all);
         ("code_size", Json.Int r1.C.code_size);
         ( "loops",
           Json.List
             (List.map
                (fun (lr : C.loop_report) ->
                  Json.Obj
                    [
                      ("loop", Json.Int lr.C.l_id);
                      ( "ii",
                        match lr.C.ii with
                        | Some s -> Json.Int s
                        | None -> Json.Null );
                      ("mii", Json.Int lr.C.mii);
                      ("status", Json.Str (C.status_to_string lr.C.status));
                    ])
                r1.C.loops) );
       ]);
  Fmt.pr "%a" Table.pp t;
  Fmt.pr
    "@.  (%d independent loops as one program; speedup is wall-clock vs@.\
    \   jobs=1 on this host — %d core(s) available; the artifact excludes@.\
    \   times and records the jobs=1 schedules, which every other job@.\
    \   count must reproduce byte for byte)@."
    n_loops
    (Domain.recommended_domain_count ());
  if not !identical_all then begin
    Fmt.pr "@.compile-speed: FAILED — output varies with the job count@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)

(** E18: the compile service and its content-addressed schedule cache.
    Streams the 72-program suite through three in-process service
    passes — uncached, cold shared cache, warm (same cache again) —
    and checks every cached response byte-identical to the uncached
    one. Requests/sec and latency percentiles go to stdout only; the
    JSON artifact carries the deterministic facts: suite size, the
    identity verdicts and the cache counters of each pass (the suite
    and the probe order are fixed, so the counters are too). Fails
    hard (exit 1) on any divergence, or if the warm pass never hits —
    schedule reuse must be invisible in the output and visible in the
    counters. *)
let table_serve () =
  section "E18: compile service — content-addressed schedule cache";
  let module Service = Sp_serve.Service in
  let module Cache = Sp_serve.Cache in
  let programs =
    List.filter_map
      (fun (e : Suite.entry) ->
        match e.Suite.kernel.Kernel.source with
        | Kernel.W2 src -> Some (e.Suite.kernel.Kernel.name, src)
        | Kernel.Ir _ -> None)
      Suite.all
  in
  let n = List.length programs in
  let capacity = 256 in
  let run_pass service =
    let lat = Array.make (max 1 n) 0.0 in
    let t0 = Monotonic_clock.now () in
    let resps =
      List.mapi
        (fun i (_, src) ->
          let r0 = Monotonic_clock.now () in
          let resp =
            Service.handle service
              (Service.Compile { machine = "warp"; inject = None; trace = None; source = src })
          in
          let r1 = Monotonic_clock.now () in
          lat.(i) <- Int64.to_float (Int64.sub r1 r0) /. 1e3;
          resp)
        programs
    in
    let total =
      Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9
    in
    (resps, lat, total)
  in
  let bodies pass_name resps =
    List.map2
      (fun (name, _) resp ->
        match resp with
        | Service.Ok body -> body
        | Service.Err msg ->
          Fmt.pr "@.serve: FAILED — %s: %s pass: %s@." name pass_name msg;
          exit 1)
      programs resps
  in
  let uncached = Service.create ~cache_capacity:0 () in
  ignore (run_pass uncached) (* warm the allocator *);
  let ref_resps, ref_lat, ref_total = run_pass uncached in
  Service.close uncached;
  let reference = bodies "uncached" ref_resps in
  let cached = Service.create ~cache_capacity:capacity () in
  let cache =
    match Service.cache cached with Some c -> c | None -> assert false
  in
  let cold_resps, cold_lat, cold_total = run_pass cached in
  let cold = Cache.stats cache in
  let warm_resps, warm_lat, warm_total = run_pass cached in
  let post = Cache.stats cache in
  Service.close cached;
  let warm =
    {
      Cache.hits = post.Cache.hits - cold.Cache.hits;
      misses = post.Cache.misses - cold.Cache.misses;
      rejects = post.Cache.rejects - cold.Cache.rejects;
      inserts = post.Cache.inserts - cold.Cache.inserts;
      evictions = post.Cache.evictions - cold.Cache.evictions;
      entries = post.Cache.entries;
    }
  in
  let identical_cold = List.equal String.equal (bodies "cold" cold_resps) reference in
  let identical_warm = List.equal String.equal (bodies "warm" warm_resps) reference in
  let pctl lat p =
    let xs = Array.copy lat in
    Array.sort compare xs;
    let k = int_of_float (p *. float_of_int (Array.length xs - 1)) in
    xs.(max 0 (min (Array.length xs - 1) k))
  in
  let t =
    Table.create
      ~headers:
        [ "pass"; "req/s"; "p50 (us)"; "p99 (us)"; "hits"; "misses"; "output" ]
      ~aligns:[ Table.L; R; R; R; R; R; L ]
  in
  let row name lat total (s : Cache.stats option) identical =
    Table.add_row t
      [
        name;
        Printf.sprintf "%.0f" (float_of_int n /. total);
        Printf.sprintf "%.0f" (pctl lat 0.50);
        Printf.sprintf "%.0f" (pctl lat 0.99);
        (match s with Some s -> string_of_int s.Cache.hits | None -> "-");
        (match s with Some s -> string_of_int s.Cache.misses | None -> "-");
        (match identical with
        | None -> "reference"
        | Some true -> "identical"
        | Some false -> "DIFFERS");
      ]
  in
  row "uncached" ref_lat ref_total None None;
  row "cold" cold_lat cold_total (Some cold) (Some identical_cold);
  row "warm" warm_lat warm_total (Some warm) (Some identical_warm);
  let json_of_stats (s : Cache.stats) =
    Json.Obj
      [
        ("hits", Json.Int s.Cache.hits);
        ("misses", Json.Int s.Cache.misses);
        ("rejects", Json.Int s.Cache.rejects);
        ("inserts", Json.Int s.Cache.inserts);
        ("evictions", Json.Int s.Cache.evictions);
        ("entries", Json.Int s.Cache.entries);
      ]
  in
  emit "serve"
    (Json.Obj
       [
         ("programs", Json.Int n);
         ("capacity", Json.Int capacity);
         ("identical_cold", Json.Bool identical_cold);
         ("identical_warm", Json.Bool identical_warm);
         ("cold", json_of_stats cold);
         ("warm", json_of_stats warm);
       ]);
  Fmt.pr "%a" Table.pp t;
  Fmt.pr
    "@.  (%d W2 programs of the suite per pass; cold and warm share one@.\
    \   %d-entry cache; requests/sec and latency are this host's wall@.\
    \   clock and stay out of the artifact, the identity verdicts and@.\
    \   cache counters go in)@."
    n capacity;
  if not (identical_cold && identical_warm) then begin
    Fmt.pr "@.serve: FAILED — cached output diverges from uncached@.";
    exit 1
  end;
  if warm.Cache.hits = 0 then begin
    Fmt.pr "@.serve: FAILED — warm pass never hit the cache@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)

(** E19: service-level objectives — the telemetry surface under a
    deterministic replay. Streams the W2 suite sequentially through a
    telemetry-enabled service (each request its own batch, so cache
    movement attributes exactly per request), then reads the health
    snapshot back. The artifact carries the schema tags, the identity
    verdict against an uncached untelemetered reference, the error
    budget, the deterministic series windows (the latency series is
    reduced to its sample/window counts — its values are wall-clock)
    and the names-only span skeleton of one traced probe, so the
    document is byte-stable across runs and machines; wall-clock
    percentiles go to stdout only. Fails hard (exit 1) on output
    divergence, a blown error budget, or a failed trace or dashboard
    round-trip. *)
let table_slo () =
  section "E19: service-level objectives — telemetry replay of the suite";
  let module Service = Sp_serve.Service in
  let programs =
    List.filter_map
      (fun (e : Suite.entry) ->
        match e.Suite.kernel.Kernel.source with
        | Kernel.W2 src -> Some (e.Suite.kernel.Kernel.name, src)
        | Kernel.Ir _ -> None)
      Suite.all
  in
  let n = List.length programs in
  let compile ?trace src =
    Service.Compile { machine = "warp"; inject = None; trace; source = src }
  in
  let reference =
    let svc = Service.create ~cache_capacity:0 ~telemetry:false () in
    let out =
      List.map
        (fun (name, src) ->
          match Service.handle svc (compile src) with
          | Service.Ok body -> body
          | Service.Err msg ->
            Fmt.pr "@.slo: FAILED — %s: reference pass: %s@." name msg;
            exit 1)
        programs
    in
    Service.close svc;
    out
  in
  let svc = Service.create ~cache_capacity:256 () in
  let lat = Array.make (max 1 n) 0.0 in
  let resps =
    List.mapi
      (fun i (_, src) ->
        let r0 = Monotonic_clock.now () in
        let resp = Service.handle svc (compile src) in
        let r1 = Monotonic_clock.now () in
        lat.(i) <- Int64.to_float (Int64.sub r1 r0) /. 1e3;
        resp)
      programs
  in
  let errs =
    List.length
      (List.filter
         (function Service.Err _ -> true | Service.Ok _ -> false)
         resps)
  in
  let bodies =
    List.filter_map
      (function Service.Ok b -> Some b | Service.Err _ -> None)
      resps
  in
  let identical = errs = 0 && List.equal String.equal bodies reference in
  (* the snapshot is taken before the traced probe below, so its
     counters and series cover exactly the n-program replay *)
  let status =
    match Json.of_string (Service.status_json svc) with
    | j -> j
    | exception Json.Parse_error m ->
      Fmt.pr "@.slo: FAILED — status snapshot unparsable: %s@." m;
      exit 1
  in
  let status_tag =
    match Json.member "schema" status with Some (Json.Str s) -> s | _ -> "?"
  in
  if status_tag <> Service.status_schema then begin
    Fmt.pr "@.slo: FAILED — status schema %S (want %S)@." status_tag
      Service.status_schema;
    exit 1
  end;
  let budget_ok =
    match Json.path [ "error_budget"; "ok" ] status with
    | Some (Json.Bool b) -> b
    | _ -> false
  in
  let req_total =
    match Json.path [ "requests"; "total" ] status with
    | Some (Json.Int i) -> i
    | _ -> -1
  in
  (* counter-valued series go into the artifact verbatim — their values
     live on the logical clock; the latency series is wall-clock
     valued, so only its sample and window counts survive *)
  let det_series =
    List.map
      (fun key ->
        ( key,
          Option.value ~default:Json.Null (Json.path [ "series"; key ] status)
        ))
      [
        "occupancy"; "failures"; "faults"; "cache_hits"; "cache_misses";
        "cache_rejects"; "cache_evictions";
      ]
  in
  let lat_summary =
    match Json.path [ "series"; "latency_us" ] status with
    | Some lj ->
      Json.Obj
        [
          ("count", Option.value ~default:Json.Null (Json.member "count" lj));
          ( "windows",
            match Json.member "windows" lj with
            | Some (Json.List l) -> Json.Int (List.length l)
            | _ -> Json.Null );
        ]
    | None -> Json.Null
  in
  (* one traced probe: the envelope must identify itself, carry the
     next sequence number and a non-empty span tree; the skeleton
     (names and nesting only) is byte-stable and lands in the artifact *)
  let first_name, first_src = List.hd programs in
  let skeleton, trace_ok =
    match Service.handle svc (compile ~trace:"slo" first_src) with
    | Service.Err msg ->
      Fmt.pr "@.slo: FAILED — %s: traced probe: %s@." first_name msg;
      exit 1
    | Service.Ok body -> (
      match Json.of_string body with
      | exception Json.Parse_error m ->
        Fmt.pr "@.slo: FAILED — trace envelope unparsable: %s@." m;
        exit 1
      | env -> (
        let tag_ok =
          (* sequence numbers are 0-based: the probe after an n-request
             replay is request n *)
          Json.member "schema" env = Some (Json.Str Service.trace_schema)
          && Json.member "seq" env = Some (Json.Int n)
        in
        let rec skel = function
          | Json.Obj kvs -> (
            let name =
              match List.assoc_opt "name" kvs with
              | Some (Json.Str s) -> s
              | _ -> "?"
            in
            match List.assoc_opt "children" kvs with
            | Some (Json.List kids) ->
              Json.Obj [ (name, Json.List (List.map skel kids)) ]
            | _ -> Json.Str name)
          | _ -> Json.Null
        in
        match Json.member "spans" env with
        | Some (Json.List spans) when spans <> [] ->
          (Json.List (List.map skel spans), tag_ok)
        | _ -> (Json.Null, false)))
  in
  let dash = Service.dashboard_html svc in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    go 0
  in
  let dash_ok = contains dash "<svg" && contains dash "</html>" in
  Service.close svc;
  let pctl p =
    let xs = Array.copy lat in
    Array.sort compare xs;
    let k = int_of_float (p *. float_of_int (Array.length xs - 1)) in
    xs.(max 0 (min (Array.length xs - 1) k))
  in
  let verdict b = if b then "ok" else "FAILED" in
  let t = Table.create ~headers:[ "gate"; "verdict" ] ~aligns:[ Table.L; L ] in
  Table.add_row t
    [ "output identical to uncached reference"; verdict identical ];
  Table.add_row t
    [
      Fmt.str "error budget (%d error(s) / %d requests)" errs req_total;
      verdict budget_ok;
    ];
  Table.add_row t [ "traced probe envelope + span tree"; verdict trace_ok ];
  Table.add_row t [ "dashboard render"; verdict dash_ok ];
  Fmt.pr "%a" Table.pp t;
  Fmt.pr
    "@.  (%d W2 programs replayed sequentially; wall latency p50 %.0f us,@.\
    \   p99 %.0f us on this host — latency values stay out of the@.\
    \   artifact, which carries only the deterministic series windows,@.\
    \   the verdicts and the traced probe's span skeleton)@."
    n (pctl 0.50) (pctl 0.99);
  emit "slo"
    (Json.Obj
       [
         ("schema", Json.Str "bench-slo/1");
         ("status_schema", Json.Str status_tag);
         ("programs", Json.Int n);
         ("requests", Json.Int req_total);
         ("errors", Json.Int errs);
         ("identical", Json.Bool identical);
         ("error_budget_ok", Json.Bool budget_ok);
         ("trace_ok", Json.Bool trace_ok);
         ("dashboard_ok", Json.Bool dash_ok);
         ("series", Json.Obj (("latency_us", lat_summary) :: det_series));
         ("span_skeleton", skeleton);
       ]);
  if not (identical && budget_ok && trace_ok && dash_ok) then begin
    Fmt.pr "@.slo: FAILED — a service-level objective is not met@.";
    exit 1
  end
  else Fmt.pr "@.slo: OK — %d request(s), every objective met@." req_total

(* ------------------------------------------------------------------ *)
(* E10: Bechamel microbenchmarks                                        *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  section "E10: scheduler cost microbenchmarks (Bechamel)";
  let open Bechamel in
  let compile_kernel k config () =
    let p = Kernel.program k in
    ignore (C.program ~config Machine.warp p)
  in
  let tests =
    [
      Test.make ~name:"table4-1:compile-conv3x3"
        (Staged.stage (compile_kernel (Apps.conv3x3 ~n:16) C.default));
      Test.make ~name:"table4-2:compile-lfk7"
        (Staged.stage (compile_kernel Livermore.k7_eos C.default));
      Test.make ~name:"fig4-2:compile-baseline-lfk7"
        (Staged.stage (compile_kernel Livermore.k7_eos C.local_only));
      Test.make ~name:"example:compile-toy-vadd"
        (Staged.stage (fun () ->
             let p =
               Sp_lang.Lower.compile_source
                 {|program v;
var a : array [0..99] of float; k : int;
begin for k := 0 to 99 do a[k] := a[k] + 1.5; end.|}
             in
             ignore (C.program Machine.toy p)));
      Test.make ~name:"frontend:parse+lower-lfk7"
        (Staged.stage (fun () -> ignore (Kernel.program Livermore.k7_eos)));
    ]
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
    in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      let a = analyze results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Fmt.pr "  %-32s %12.0f ns/run@." name est
          | _ -> Fmt.pr "  %-32s (no estimate)@." name)
        a)
    tests

(* ------------------------------------------------------------------ *)
(* E15: the regression sentinel — bench --compare                       *)
(* ------------------------------------------------------------------ *)

(** Diff two [--emit-json] documents that carry the [pipeline]
    artifact (the E13 per-kernel profiles, e.g. the committed
    BENCH_pipeline.json against a fresh regeneration). Per kernel:
    cycles, MFLOPS and code size move at most [threshold] percent in
    the bad direction; per loop: the achieved initiation interval never
    increases and a pipelined loop never stops pipelining. Utilization
    deltas are reported but not gated (a faster schedule can lower a
    busy fraction legitimately).

    Exit status: 0 clean, 1 any regression, 2 unusable input. *)
let compare_artifacts ~threshold ~attribute old_path new_path =
  let read_file path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let load path =
    match Json.of_string (read_file path) with
    | j -> j
    | exception Json.Parse_error m ->
      Fmt.epr "compare: %s: parse error: %s@." path m;
      exit 2
    | exception Sys_error m ->
      Fmt.epr "compare: %s@." m;
      exit 2
  in
  let kernels path j =
    match Json.path [ "artifacts"; "pipeline"; "kernels" ] j with
    | Some (Json.List l) -> l
    | _
      when Json.path [ "artifacts"; "compile_speed" ] j <> None
           || Json.path [ "artifacts"; "serve" ] j <> None
           || Json.path [ "artifacts"; "slo" ] j <> None
           || Json.path [ "artifacts"; "campaign" ] j <> None
           || Json.path [ "artifacts"; "campaign-quick" ] j <> None ->
      (* a compile-speed-, serve-, slo- or campaign-only document:
         nothing to diff per kernel, but the corresponding gates below
         still apply *)
      []
    | _ ->
      Fmt.epr
        "compare: %s carries no artifacts/pipeline/kernels (generate it \
         with --table pipeline --emit-json)@."
        path;
      exit 2
  in
  let jint k j =
    match Json.member k j with Some (Json.Int i) -> Some i | _ -> None
  in
  let jnum k j =
    match Json.member k j with
    | Some (Json.Int i) -> Some (float_of_int i)
    | Some (Json.Float f) -> Some f
    | _ -> None
  in
  let jstr k j =
    match Json.member k j with Some (Json.Str s) -> Some s | _ -> None
  in
  let old_doc = load old_path in
  let new_doc = load new_path in
  (* every artifact of a current document is schema-tagged at [emit];
     diffing across schema generations is rejected outright for every
     artifact, exactly as the slo gate always did. An untagged artifact
     in the old document predates the stamping and is tolerated (its
     per-artifact gates still apply); the new document must carry
     tags. *)
  (match Json.member "artifacts" new_doc with
  | Some (Json.Obj kvs) ->
    List.iter
      (fun (name, jn) ->
        let tag j = jstr "schema" j in
        match tag jn with
        | None ->
          Fmt.epr
            "compare: %s: artifact %s carries no schema tag (regenerate \
             with a current bench --emit-json)@."
            new_path name;
          exit 2
        | Some n -> (
          match
            Option.bind (Json.path [ "artifacts"; name ] old_doc) tag
          with
          | Some o when o <> n ->
            Fmt.epr
              "compare: artifact %s: schema %S in %s vs %S in %s — \
               documents from different schema generations are never \
               diffed@."
              name o old_path n new_path;
            exit 2
          | _ -> ()))
      kvs
  | _ -> ());
  let old_ks = kernels old_path old_doc in
  let new_ks = kernels new_path new_doc in
  let find_kernel name l =
    List.find_opt (fun j -> jstr "kernel" j = Some name) l
  in
  let regressions = ref [] in
  let flag fmt = Fmt.kstr (fun m -> regressions := m :: !regressions) fmt in
  (* --attribute: for every gated per-loop regression, join the two
     documents' attribution fields (interval bounds and binding
     constraint, per-interval placement-failure counts, work-cost
     counters) and emit a one-line cause. Old documents that predate
     the fields degrade to an explicit note, never an error. *)
  let attributions = ref [] in
  let attribute_loop name id lo ln =
    if attribute then begin
      let pfails j =
        match Json.member "probe_fails" j with
        | Some (Json.List l) ->
          Some
            (List.filter_map
               (fun e ->
                 match (jint "ii" e, jint "fails" e) with
                 | Some i, Some f ->
                   Some
                     (i, (f, Option.value ~default:"?" (jstr "reason" e)))
                 | _ -> None)
               l)
        | _ -> None
      in
      let costs j =
        match Json.member "cost" j with
        | Some (Json.Obj kvs) ->
          Some
            (List.filter_map
               (fun (k, v) ->
                 match v with Json.Int i -> Some (k, i) | _ -> None)
               kvs)
        | _ -> None
      in
      let parts = ref [] in
      let part fmt = Fmt.kstr (fun m -> parts := m :: !parts) fmt in
      let bound key binding_name =
        match (jint key lo, jint key ln) with
        | Some o, Some n when n <> o ->
          part "%s %s %d -> %d%s" key
            (if n > o then "rose" else "fell")
            o n
            (if jstr "binding" ln = Some binding_name then
               match jstr "binding_detail" ln with
               | Some d when d <> "" -> " (binding, on " ^ d ^ ")"
               | _ -> " (binding)"
             else "")
        | _ -> ()
      in
      bound "res_mii" "resource";
      bound "rec_mii" "recurrence";
      (match (jstr "binding" lo, jstr "binding" ln) with
      | Some o, Some n when o <> n ->
        part "binding constraint %s -> %s" o n
      | _ -> ());
      (match (pfails lo, pfails ln, jint "achieved_ii" lo) with
      | Some po, Some pn, Some old_ii ->
        let at ii l =
          match List.assoc_opt ii l with Some c -> c | None -> (0, "")
        in
        let fo, _ = at old_ii po in
        let fn, reason = at old_ii pn in
        if fn > fo then
          part "%d new placement failure(s) at II=%d (%s)" (fn - fo)
            old_ii reason
      | _ -> ());
      (match (costs lo, costs ln) with
      | Some co, Some cn ->
        (* the biggest relative mover among the work counters *)
        let worst =
          List.fold_left
            (fun acc (k, o) ->
              match List.assoc_opt k cn with
              | Some n when o > 0 ->
                let d = 100.0 *. float_of_int (n - o) /. float_of_int o in
                if abs_float d > abs_float (snd acc) then (k, d) else acc
              | _ -> acc)
            ("", 0.0) co
        in
        if fst worst <> "" && abs_float (snd worst) >= 10.0 then
          part "%s %+.0f%%" (fst worst) (snd worst)
      | _ -> ());
      let cause =
        if !parts <> [] then String.concat "; " (List.rev !parts)
        else if costs lo = None || costs ln = None then
          "artifact predates attribution fields (regenerate with a \
           current bench --table pipeline)"
        else "no bound, probe or cost change recorded"
      in
      attributions :=
        Fmt.str "%s loop %d: %s" name id cause :: !attributions
    end
  in
  let t =
    Table.create
      ~headers:[ "kernel"; "cycles"; "MFLOPS"; "code"; "ii"; "util"; "verdict" ]
      ~aligns:[ Table.L; R; R; R; R; R; L ]
  in
  (* delta of a lower-is-better integer metric, gated at threshold *)
  let pct_delta o n = 100.0 *. (n -. o) /. (if o = 0.0 then 1.0 else o) in
  List.iter
    (fun ko ->
      let name = Option.value ~default:"?" (jstr "kernel" ko) in
      match find_kernel name new_ks with
      | None ->
        flag "%s: kernel missing from %s" name new_path;
        Table.add_row t [ name; "-"; "-"; "-"; "-"; "-"; "MISSING" ]
      | Some kn ->
        let bad = ref [] in
        let cell ~higher_is_better key =
          match (jnum key ko, jnum key kn) with
          | Some o, Some n ->
            let d = pct_delta o n in
            let worse = if higher_is_better then -.d else d in
            if worse > threshold then begin
              bad := key :: !bad;
              flag "%s: %s %s %.6g -> %.6g (%+.1f%%, threshold %.1f%%)" name
                key
                (if higher_is_better then "fell" else "rose")
                o n d threshold
            end;
            Printf.sprintf "%+.1f%%" d
          | _ -> "-"
        in
        let c_cycles = cell ~higher_is_better:false "cycles" in
        let c_mflops = cell ~higher_is_better:true "mflops" in
        let c_code = cell ~higher_is_better:false "code_size" in
        (* loops: match by id; achieved_ii may not rise, pipelined may
           not stop pipelining *)
        let loops j =
          match Json.member "loops" j with Some (Json.List l) -> l | _ -> []
        in
        let ii_cell =
          String.concat ","
            (List.filter_map
               (fun lo ->
                 let id = Option.value ~default:(-1) (jint "loop" lo) in
                 let ln =
                   List.find_opt (fun l -> jint "loop" l = Some id) (loops kn)
                 in
                 match (jint "achieved_ii" lo, ln) with
                 | None, _ -> None
                 | Some _, None ->
                   bad := "loop" :: !bad;
                   flag "%s: loop %d missing from %s" name id new_path;
                   Some (Printf.sprintf "l%d:?" id)
                 | Some o, Some ln -> (
                   match jint "achieved_ii" ln with
                   | None ->
                     bad := "loop" :: !bad;
                     flag "%s: loop %d no longer pipelines (was ii=%d, now %s)"
                       name id o
                       (Option.value ~default:"?" (jstr "status" ln));
                     attribute_loop name id lo ln;
                     Some (Printf.sprintf "l%d:%d->none" id o)
                   | Some n when n > o ->
                     bad := "loop" :: !bad;
                     flag "%s: loop %d initiation interval rose %d -> %d" name
                       id o n;
                     attribute_loop name id lo ln;
                     Some (Printf.sprintf "l%d:%d->%d" id o n)
                   | Some n when n < o -> Some (Printf.sprintf "l%d:%d->%d" id o n)
                   | Some _ -> Some (Printf.sprintf "l%d:+0" id)))
               (loops ko))
        in
        (* utilization: largest absolute move in percentage points,
           report-only *)
        let util_cell =
          let u j =
            match Json.member "utilization" j with
            | Some (Json.Obj kvs) ->
              List.filter_map
                (fun (k, v) ->
                  match v with
                  | Json.Float f -> Some (k, f)
                  | Json.Int i -> Some (k, float_of_int i)
                  | _ -> None)
                kvs
            | _ -> []
          in
          let uo = u ko and un = u kn in
          let worst =
            List.fold_left
              (fun acc (k, o) ->
                match List.assoc_opt k un with
                | Some n when abs_float (n -. o) > abs_float (snd acc) ->
                  (k, n -. o)
                | _ -> acc)
              ("", 0.0) uo
          in
          if fst worst = "" then "-"
          else Printf.sprintf "%s%+.1fpp" (fst worst) (100.0 *. snd worst)
        in
        Table.add_row t
          [
            name;
            c_cycles;
            c_mflops;
            c_code;
            (if ii_cell = "" then "-" else ii_cell);
            util_cell;
            (if !bad = [] then "ok"
             else "REGRESSED: " ^ String.concat "," (List.sort_uniq compare !bad));
          ])
    old_ks;
  (* compile-throughput artifact (E16): gated only when both documents
     carry it — BENCH_pipeline.json predates it and is not regenerated
     for this *)
  let cs_note =
    match
      ( Json.path [ "artifacts"; "compile_speed" ] old_doc,
        Json.path [ "artifacts"; "compile_speed" ] new_doc )
    with
    | Some co, Some cn ->
      (match Json.member "identical_across_j" cn with
      | Some (Json.Bool true) -> ()
      | _ ->
        flag
          "compile-speed: parallel output no longer identical across job \
           counts");
      (match (jnum "code_size" co, jnum "code_size" cn) with
      | Some o, Some n ->
        let d = pct_delta o n in
        if d > threshold then
          flag "compile-speed: corpus code size rose %.6g -> %.6g (%+.1f%%)"
            o n d
      | _ -> ());
      let loops j =
        match Json.member "loops" j with Some (Json.List l) -> l | _ -> []
      in
      List.iter
        (fun lo ->
          let id = Option.value ~default:(-1) (jint "loop" lo) in
          match
            ( jint "ii" lo,
              List.find_opt (fun l -> jint "loop" l = Some id) (loops cn) )
          with
          | None, _ -> ()
          | Some _, None ->
            flag "compile-speed: loop %d missing from %s" id new_path
          | Some o, Some ln -> (
            match jint "ii" ln with
            | None ->
              flag "compile-speed: loop %d no longer pipelines (was ii=%d)"
                id o
            | Some n when n > o ->
              flag "compile-speed: loop %d initiation interval rose %d -> %d"
                id o n
            | Some _ -> ()))
        (loops co);
      "gated"
    | _ -> "absent (skipped)"
  in
  (* compile-service artifact (E18): identity is an invariant of the
     new document alone and gates whenever it is present; the warm hit
     rate is compared against the old document when both carry it —
     latency never appears in the artifact, so there is nothing
     wall-clock to misjudge *)
  let serve_note =
    match Json.path [ "artifacts"; "serve" ] new_doc with
    | None -> "absent (skipped)"
    | Some sn ->
      (match Json.member "identical_cold" sn with
      | Some (Json.Bool true) -> ()
      | _ -> flag "serve: cold cached output diverges from uncached");
      (match Json.member "identical_warm" sn with
      | Some (Json.Bool true) -> ()
      | _ -> flag "serve: warm cached output diverges from uncached");
      let hit_rate j =
        match
          ( Json.path [ "warm"; "hits" ] j,
            Json.path [ "warm"; "misses" ] j )
        with
        | Some (Json.Int h), Some (Json.Int m) when h + m > 0 ->
          Some (100.0 *. float_of_int h /. float_of_int (h + m))
        | _ -> None
      in
      (match hit_rate sn with
      | Some r when r <= 0.0 ->
        flag "serve: warm pass never hits the schedule cache"
      | Some _ -> ()
      | None -> flag "serve: artifact carries no warm cache counters");
      (match
         Option.bind (Json.path [ "artifacts"; "serve" ] old_doc) (fun so ->
             match (hit_rate so, hit_rate sn) with
             | Some o, Some n -> Some (o, n)
             | _ -> None)
       with
      | Some (o, n) when o -. n > threshold ->
        flag "serve: warm hit rate fell %.1f%% -> %.1f%% (threshold %.1fpp)"
          o n threshold
      | _ -> ());
      "gated"
  in
  (* service-level objectives (E19): the schema tags must match exactly
     — a document from another schema generation is rejected outright
     (exit 2), never silently diffed — and the identity, error-budget,
     trace and dashboard verdicts of the new document gate whenever it
     carries the artifact; the error count may not rise against the
     old document when both carry it *)
  let slo_note =
    let check_schema path j =
      (match jstr "schema" j with
      | Some "bench-slo/1" -> ()
      | Some s ->
        Fmt.epr
          "compare: %s: slo artifact schema %S (this tool reads bench-slo/1)@."
          path s;
        exit 2
      | None ->
        Fmt.epr "compare: %s: slo artifact carries no schema tag@." path;
        exit 2);
      match jstr "status_schema" j with
      | Some s when s = Sp_serve.Service.status_schema -> ()
      | Some s ->
        Fmt.epr
          "compare: %s: status snapshot schema %S (this tool reads %s)@."
          path s Sp_serve.Service.status_schema;
        exit 2
      | None ->
        Fmt.epr "compare: %s: slo artifact carries no status_schema@." path;
        exit 2
    in
    match Json.path [ "artifacts"; "slo" ] new_doc with
    | None -> "absent (skipped)"
    | Some sn ->
      check_schema new_path sn;
      (match Json.member "identical" sn with
      | Some (Json.Bool true) -> ()
      | _ ->
        flag "slo: replayed service output diverges from the uncached \
              reference");
      (match Json.member "error_budget_ok" sn with
      | Some (Json.Bool true) -> ()
      | _ -> flag "slo: error budget violated (>1 failed request per 100)");
      (match Json.member "trace_ok" sn with
      | Some (Json.Bool true) -> ()
      | _ -> flag "slo: traced probe round-trip failed");
      (match Json.member "dashboard_ok" sn with
      | Some (Json.Bool true) -> ()
      | _ -> flag "slo: dashboard render failed");
      (match Json.path [ "artifacts"; "slo" ] old_doc with
      | None -> ()
      | Some so ->
        check_schema old_path so;
        (match (jint "errors" so, jint "errors" sn) with
        | Some o, Some n when n > o ->
          flag "slo: request errors rose %d -> %d" o n
        | _ -> ()));
      "gated"
  in
  (* campaign pass-rate windows: when both documents carry a campaign
     artifact, the per-seed-window pass rate may not fall by more than
     [threshold] percentage points and no window may disappear — a
     verdict regression localizes to a seed range instead of one
     corpus-wide scalar *)
  let campaign_note =
    let doc_campaign j =
      match Json.path [ "artifacts"; "campaign" ] j with
      | Some c -> Some c
      | None -> Json.path [ "artifacts"; "campaign-quick" ] j
    in
    match (doc_campaign old_doc, doc_campaign new_doc) with
    | Some co, Some cn ->
      let wins j =
        match Json.path [ "pass_rate"; "windows" ] j with
        | Some (Json.List l) -> l
        | _ -> []
      in
      let rate w =
        match (jint "count" w, jnum "sum" w) with
        | Some c, Some s when c > 0 -> Some (100.0 *. s /. float_of_int c)
        | _ -> None
      in
      let new_wins = wins cn in
      List.iter
        (fun wo ->
          let idx = Option.value ~default:(-1) (jint "window" wo) in
          match
            List.find_opt (fun w -> jint "window" w = Some idx) new_wins
          with
          | None ->
            flag "campaign: seed window %d missing from %s" idx new_path
          | Some wn -> (
            match (rate wo, rate wn) with
            | Some o, Some n when o -. n > threshold ->
              flag
                "campaign: window %d pass rate fell %.1f%% -> %.1f%% \
                 (threshold %.1fpp)"
                idx o n threshold
            | _ -> ()))
        (wins co);
      "gated"
    | _ -> "absent (skipped)"
  in
  section "E15: regression sentinel";
  Fmt.pr "%a" Table.pp t;
  Fmt.pr "  compile-speed artifact: %s@." cs_note;
  Fmt.pr "  serve artifact: %s@." serve_note;
  Fmt.pr "  slo artifact: %s@." slo_note;
  Fmt.pr "  campaign pass-rate windows: %s@." campaign_note;
  if !regressions = [] then begin
    Fmt.pr "@.compare: OK — %d kernel(s) within %.1f%% of %s@."
      (List.length old_ks) threshold old_path;
    0
  end
  else begin
    Fmt.pr "@.compare: %d regression(s) against %s:@."
      (List.length !regressions) old_path;
    List.iter (fun m -> Fmt.pr "  %s@." m) (List.rev !regressions);
    if attribute then begin
      Fmt.pr "@.attribution:@.";
      if !attributions = [] then
        Fmt.pr
          "  (no per-loop regression to attribute — the flags above \
           concern kernel-level or non-pipeline artifacts)@."
      else
        List.iter (fun m -> Fmt.pr "  %s@." m) (List.rev !attributions)
    end;
    1
  end

(* ------------------------------------------------------------------ *)
(* E17: the differential fuzzing campaign                              *)
(* ------------------------------------------------------------------ *)

module Campaign = Sp_camp.Campaign

let json_of_campaign (s : Campaign.summary) : Json.t =
  Json.Obj
    [
      ("total", Json.Int s.Campaign.total);
      ("pass", Json.Int s.Campaign.pass);
      ( "verdicts",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) s.Campaign.verdicts)
      );
      ( "statuses",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) s.Campaign.statuses)
      );
      ("gap", json_of_histogram s.Campaign.gap);
      ("eff", json_of_histogram s.Campaign.eff);
      ("code_size", json_of_histogram s.Campaign.csize);
      (* deterministic work-unit distributions: per program, per compile
         phase, and the top-N most expensive programs — counts, not
         clocks, so identical at any jobs width *)
      ("cost", json_of_histogram s.Campaign.cost);
      ( "cost_by_phase",
        Json.Obj
          (List.map
             (fun (name, h) -> (name, json_of_histogram h))
             s.Campaign.cost_by_phase) );
      ( "expensive",
        Json.List
          (List.map
             (fun (seed, units) ->
               Json.Obj
                 [ ("seed", Json.Int seed); ("units", Json.Int units) ])
             s.Campaign.expensive) );
      (* per-seed-window verdict rates on the seed logical clock —
         deterministic (the pass indicator per seed is), so --compare
         can gate pass-rate per window; see the campaign section there *)
      ("pass_rate", Sp_obs.Series.to_json s.Campaign.pass_rate);
      ( "failures",
        Json.List
          (List.map
             (fun (f : Campaign.failure) ->
               Json.Obj
                 [
                   ("seed", Json.Int f.Campaign.f_seed);
                   ("kind", Json.Str f.Campaign.f_kind);
                   ("detail", Json.Str f.Campaign.f_detail);
                   ("nodes_before", Json.Int f.Campaign.f_nodes_before);
                   ("nodes_after", Json.Int f.Campaign.f_nodes_after);
                   ("evals", Json.Int f.Campaign.f_evals);
                   ( "file",
                     match f.Campaign.f_file with
                     | Some p -> Json.Str p
                     | None -> Json.Null );
                 ])
             s.Campaign.failures) );
      ("unminimized", Json.Int s.Campaign.unminimized);
    ]

let print_campaign_summary (s : Campaign.summary) =
  let t =
    Table.create ~headers:[ "verdict"; "count" ] ~aligns:[ Table.L; R ]
  in
  List.iter
    (fun (k, n) -> Table.add_row t [ k; string_of_int n ])
    s.Campaign.verdicts;
  Fmt.pr "%a@." Table.pp t;
  if s.Campaign.statuses <> [] then begin
    let st =
      Table.create ~headers:[ "loop status"; "count" ] ~aligns:[ Table.L; R ]
    in
    List.iter
      (fun (k, n) -> Table.add_row st [ k; string_of_int n ])
      s.Campaign.statuses;
    Fmt.pr "%a@." Table.pp st
  end;
  Fmt.pr "  ii - mii gap : %d pipelined loops, mean %.3f@."
    (Histogram.count s.Campaign.gap)
    (Histogram.mean s.Campaign.gap);
  Fmt.pr "  efficiency   : mean %.3f@." (Histogram.mean s.Campaign.eff);
  Fmt.pr "  code size    : mean %.1f instruction words@."
    (Histogram.mean s.Campaign.csize);
  Fmt.pr "  compile cost : mean %.0f work units@."
    (Histogram.mean s.Campaign.cost);
  if s.Campaign.expensive <> [] then begin
    let et =
      Table.create ~headers:[ "costly seed"; "work units" ]
        ~aligns:[ Table.R; R ]
    in
    List.iter
      (fun (seed, units) ->
        Table.add_row et [ string_of_int seed; string_of_int units ])
      s.Campaign.expensive;
    Fmt.pr "%a@." Table.pp et
  end;
  List.iter
    (fun (f : Campaign.failure) ->
      Fmt.pr "  FAIL seed %d: %s (%s) minimized %d -> %d nodes in %d evals%s@."
        f.Campaign.f_seed f.Campaign.f_kind f.Campaign.f_detail
        f.Campaign.f_nodes_before f.Campaign.f_nodes_after f.Campaign.f_evals
        (match f.Campaign.f_file with
        | Some p -> " banked " ^ p
        | None -> ""))
    s.Campaign.failures;
  if s.Campaign.unminimized > 0 then
    Fmt.pr "  (+%d failure(s) beyond the bank cap, not minimized)@."
      s.Campaign.unminimized

(** E17: stream a seed range of generated programs through the
    differential oracle. A global [--inject SITE\@K] switches to
    inject mode: the fault is re-armed around every program (and the
    campaign runs single-domain), so the armed site must be detected,
    minimized and banked — the CI must-fire case. *)
let table_campaign ?(quick = false) ~seeds ~bank ~jobs () =
  let name = if quick then "campaign-quick" else "campaign" in
  let lo, hi =
    match seeds with
    | Some (lo, hi) -> (lo, hi)
    | None -> if quick then (1, 250) else (1, 10_000)
  in
  let mode =
    match Sp_util.Fault.armed_spec () with
    | Some (site, k) ->
      (* the campaign re-arms per program; the global arming from the
         driver would otherwise double-count hits *)
      Sp_util.Fault.disarm ();
      Campaign.Inject (site, k)
    | None -> Campaign.Clean
  in
  section
    (Fmt.str "E17: differential fuzzing campaign (seeds %d..%d%s)" lo hi
       (match mode with
       | Campaign.Clean -> ""
       | Campaign.Inject (site, k) -> Fmt.str ", inject %s@%d" site k));
  let cfg =
    { Campaign.default with Campaign.lo; hi; jobs; mode; bank_dir = bank }
  in
  let total = hi - lo + 1 in
  let t0 = Monotonic_clock.now () in
  let last = ref 0 in
  let s =
    Campaign.run
      ~on_progress:(fun n ->
        if n - !last >= 2000 || n = total then begin
          last := n;
          Fmt.pr "  %d/%d programs@." n total
        end)
      cfg
  in
  let dt = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9 in
  Fmt.pr "@.";
  print_campaign_summary s;
  (* throughput goes to stdout only — artifacts carry no wall-clock *)
  Fmt.pr "  throughput   : %.0f programs/s (%.1f s wall, %d job(s))@."
    (float_of_int total /. dt)
    dt
    (match mode with Campaign.Clean -> max 1 jobs | Campaign.Inject _ -> 1);
  emit name (json_of_campaign s);
  let failures = Campaign.failure_count s in
  if failures > 0 then begin
    Fmt.pr "@.campaign: %d failing seed(s) out of %d@." failures s.Campaign.total;
    exit_status := 1
  end
  else
    Fmt.pr "@.campaign: OK — %d programs, every verdict pass@."
      s.Campaign.total

(** E17b: graceful-degradation sweep — every registered compiler fault
    site armed across the population; loops must fall back cleanly
    (degradation is graceful here), anything worse fails. One site
    inverts: [Sp_opt.Exact.nogood_site] corrupts the learned-nogood
    bank silently instead of degrading, so its rows are expected to
    read [opt-diverge] — the differential oracle {e catching} the
    corruption. Zero detections across that site's rows means the
    detector is broken, and fails the sweep. *)
let table_campaign_sweep ~seeds ~bank ~jobs () =
  let lo, hi = match seeds with Some r -> r | None -> (1, 200) in
  Sp_util.Fault.disarm () (* the sweep arms every site itself *);
  section (Fmt.str "E17b: fault-site sweep (seeds %d..%d)" lo hi);
  let cfg =
    { Campaign.default with Campaign.lo; hi; jobs; bank_dir = bank }
  in
  let results = Campaign.sweep cfg in
  let doctor = Sp_opt.Exact.nogood_site in
  let t =
    Table.create
      ~headers:
        [ "armed site"; "programs"; "pass"; "degraded loops"; "detected";
          "failures" ]
      ~aligns:[ Table.L; R; R; R; R; R ]
  in
  let bad = ref 0 and detected = ref 0 in
  List.iter
    (fun ((site, k), (s : Campaign.summary)) ->
      let degraded =
        List.fold_left
          (fun acc (tag, n) -> if tag = "degraded" then acc + n else acc)
          0 s.Campaign.statuses
      in
      let diverged =
        Option.value ~default:0
          (List.assoc_opt "opt-diverge" s.Campaign.verdicts)
      in
      let failures = Campaign.failure_count s in
      (* on the doctoring site, opt-diverge verdicts are the expected
         detection, not a failure of the compiler under fault *)
      let failures =
        if site = doctor then failures - diverged else failures
      in
      bad := !bad + failures;
      if site = doctor then detected := !detected + diverged;
      Table.add_row t
        [
          Fmt.str "%s@%d" site k;
          string_of_int s.Campaign.total;
          string_of_int s.Campaign.pass;
          string_of_int degraded;
          (if site = doctor then string_of_int diverged else "-");
          string_of_int failures;
        ])
    results;
  Fmt.pr "%a@." Table.pp t;
  emit "campaign-sweep"
    (Json.Obj
       (List.map
          (fun ((site, k), s) ->
            (Fmt.str "%s@%d" site k, json_of_campaign s))
          results));
  let swept_doctor = List.exists (fun ((site, _), _) -> site = doctor) results in
  if !bad > 0 then begin
    Fmt.pr "@.sweep: %d non-graceful failure(s)@." !bad;
    exit_status := 1
  end
  else if swept_doctor && !detected = 0 then begin
    Fmt.pr
      "@.sweep: corrupted nogood bank (%s) was never detected by the \
       opt-diverge oracle@."
      doctor;
    exit_status := 1
  end
  else
    Fmt.pr
      "@.sweep: OK — every armed site degraded gracefully%s@."
      (if swept_doctor then
         Fmt.str " (and %s was caught %d time(s))" doctor !detected
       else "")

(* ------------------------------------------------------------------ *)

let all () =
  table_example ();
  table_4_1 ();
  table_4_2 ();
  figure_4_1 ();
  figure_4_2 ();
  table_lower_bound ();
  table_code_size ();
  table_mve ();
  table_search ();
  table_unroll ();
  table_hier ();
  table_scale ();
  table_optimal ~jobs:1 ();
  table_optimal_learning ~jobs:1 ();
  table_pipeline ();
  table_cost ~jobs:1 ();
  table_trace_overhead ();
  table_compile_speed ();
  table_serve ();
  table_slo ();
  bechamel ()

let () =
  (* peel the value-carrying options out of the argument list;
     whatever artifacts the selected command registers are then
     written as one document (--emit-json) *)
  let peel key nvals args =
    let rec go acc = function
      | x :: rest when x = key ->
        if List.length rest < nvals then begin
          Fmt.epr "%s needs %d argument(s)@." key nvals;
          exit 2
        end
        else
          let rec take k l =
            if k = 0 then ([], l)
            else
              match l with
              | x :: tl ->
                let vs, rest = take (k - 1) tl in
                (x :: vs, rest)
              | [] -> assert false
          in
          let vals, rest = take nvals rest in
          (Some vals, List.rev_append acc rest)
      | x :: rest -> go (x :: acc) rest
      | [] -> (None, List.rev acc)
    in
    go [] args
  in
  let args = List.tl (Array.to_list Sys.argv) in
  let emit_path, args =
    match peel "--emit-json" 1 args with
    | Some [ p ], rest -> (Some p, rest)
    | _, rest -> (None, rest)
  in
  let compare_spec, args =
    match peel "--compare" 2 args with
    | Some [ o; n ], rest -> (Some (o, n), rest)
    | _, rest -> (None, rest)
  in
  let attribute, args =
    match peel "--attribute" 0 args with
    | Some _, rest -> (true, rest)
    | None, rest -> (false, rest)
  in
  if attribute && compare_spec = None then begin
    Fmt.epr "--attribute only applies to --compare OLD NEW@.";
    exit 2
  end;
  let threshold, args =
    match peel "--threshold" 1 args with
    | Some [ p ], rest -> (
      match float_of_string_opt p with
      | Some x when x >= 0.0 -> (x, rest)
      | _ ->
        Fmt.epr "--threshold needs a non-negative percentage, got %S@." p;
        exit 2)
    | _, rest -> (2.0, rest)
  in
  let seeds, args =
    match peel "--seeds" 1 args with
    | Some [ spec ], rest -> (
      match
        try Scanf.sscanf spec "%d..%d%!" (fun lo hi -> Some (lo, hi))
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
      with
      | Some (lo, hi) when lo <= hi -> (Some (lo, hi), rest)
      | _ ->
        Fmt.epr "--seeds needs LO..HI with LO <= HI, got %S@." spec;
        exit 2)
    | _, rest -> (None, rest)
  in
  let bank, args =
    match peel "--bank" 1 args with
    | Some [ d ], rest -> (Some d, rest)
    | _, rest -> (None, rest)
  in
  let jobs, args =
    match peel "--jobs" 1 args with
    | Some [ j ], rest -> (
      match int_of_string_opt j with
      | Some n when n >= 1 -> (n, rest)
      | _ ->
        Fmt.epr "--jobs needs a positive integer, got %S@." j;
        exit 2)
    | _, rest -> (1, rest)
  in
  let args =
    match peel "--inject" 1 args with
    | Some [ spec ], rest -> (
      match String.rindex_opt spec '@' with
      | Some i
        when i > 0
             && (match
                   int_of_string_opt
                     (String.sub spec (i + 1) (String.length spec - i - 1))
                 with
                | Some k when k >= 1 -> true
                | _ -> false) ->
        let site = String.sub spec 0 i in
        let k =
          Option.get
            (int_of_string_opt
               (String.sub spec (i + 1) (String.length spec - i - 1)))
        in
        if not (List.mem site (Sp_util.Fault.sites ())) then begin
          Fmt.epr "--inject: unknown fault site %S (available: %s)@." site
            (String.concat ", " (Sp_util.Fault.sites ()));
          exit 2
        end;
        Sp_util.Fault.arm ~site ~after:k;
        rest
      | _ ->
        Fmt.epr "--inject needs SITE@@K with K >= 1, got %S@." spec;
        exit 2)
    | _, rest -> rest
  in
  (match compare_spec with
  | Some (old_path, new_path) ->
    if args <> [] then begin
      Fmt.epr "--compare takes no further arguments (got %s)@."
        (String.concat " " args);
      exit 2
    end;
    exit (compare_artifacts ~threshold ~attribute old_path new_path)
  | None -> ());
  (match args with
  | [] -> all ()
  | [ "--bechamel" ] -> bechamel ()
  | [ "--table"; t ] -> (
    match t with
    | "example" -> table_example ()
    | "4-1" -> table_4_1 ()
    | "4-2" -> table_4_2 ()
    | "lower-bound" -> table_lower_bound ()
    | "code-size" -> table_code_size ()
    | "mve" -> table_mve ()
    | "hier" -> table_hier ()
    | "scale" -> table_scale ()
    | "search" -> table_search ()
    | "unroll" -> table_unroll ()
    | "optimal" -> table_optimal ~jobs ()
    | "optimal-quick" -> table_optimal ~quick:true ~jobs ()
    | "optimal-learning" -> table_optimal_learning ~jobs ()
    | "optimal-learning-quick" -> table_optimal_learning ~quick:true ~jobs ()
    | "pipeline" -> table_pipeline ()
    | "cost" -> table_cost ~jobs ()
    | "trace-overhead" -> table_trace_overhead ()
    | "compile-speed" -> table_compile_speed ()
    | "compile-speed-quick" -> table_compile_speed ~quick:true ()
    | "serve" -> table_serve ()
    | "slo" -> table_slo ()
    | "campaign" -> table_campaign ~seeds ~bank ~jobs ()
    | "campaign-quick" -> table_campaign ~quick:true ~seeds ~bank ~jobs ()
    | "campaign-sweep" -> table_campaign_sweep ~seeds ~bank ~jobs ()
    | _ ->
      Fmt.epr "unknown table %s@." t;
      exit 1)
  | [ "--figure"; f ] -> (
    match f with
    | "4-1" -> figure_4_1 ()
    | "4-2" -> figure_4_2 ()
    | _ ->
      Fmt.epr "unknown figure %s@." f;
      exit 1)
  | _ ->
    Fmt.epr
      "usage: %s [--table T | --figure F | --bechamel] [--emit-json FILE]@."
      Sys.argv.(0);
    exit 1);
  Option.iter write_artifacts emit_path;
  if !exit_status <> 0 then exit !exit_status
