(** Leveled diagnostic logging shared by the compiler passes and the
    driver/benchmark tools.

    Replaces the ad-hoc [SP_DEBUG] [Printf.eprintf] tracing that used
    to be sprinkled through {!Sp_core.Compile}: one switch, three
    levels — and exactly {e one sink}. Every enabled line is formatted
    to a string first and handed whole to the sink, so concurrent
    writers of the same [stderr] (tracing dumps, benchmark progress,
    the test runner) can never interleave with a log line mid-way; the
    default sink writes the line and flushes in a single call. Tests
    swap the sink with {!with_capture} instead of scraping [stderr].

    The level comes from the [SP_LOG] environment variable ([quiet],
    [info] or [debug]; [SP_DEBUG] being set at all still selects
    [debug], for compatibility with old invocations) and can be
    overridden programmatically with {!set_level}. *)

type level = Quiet | Info | Debug

let int_of_level = function Quiet -> 0 | Info -> 1 | Debug -> 2

let level_of_string = function
  | "quiet" -> Some Quiet
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let current =
  ref
    (match Option.bind (Sys.getenv_opt "SP_LOG") level_of_string with
    | Some l -> l
    | None -> if Sys.getenv_opt "SP_DEBUG" <> None then Debug else Quiet)

let set_level l = current := l
let level () = !current
let enabled l = int_of_level l <= int_of_level !current

(* ---- the sink ----------------------------------------------------- *)

(** The single output point: receives one complete line (no trailing
    newline). The default writes ["line\n"] to stderr in one buffered
    call and flushes. *)
let default_sink line = Printf.eprintf "%s\n%!" line

let sink = ref default_sink

let set_sink f = sink := f

(** [with_capture f] runs [f] with the sink replaced by an in-memory
    collector and returns [f]'s result with the captured lines in
    emission order. The previous sink is restored even when [f]
    raises. Intended for tests asserting on diagnostics. *)
let with_capture f =
  let captured = ref [] in
  let prev = !sink in
  sink := (fun line -> captured := line :: !captured);
  Fun.protect
    ~finally:(fun () -> sink := prev)
    (fun () ->
      let v = f () in
      (v, List.rev !captured))

(** [logf level fmt ...] emits one line through the sink when [level]
    is enabled; a disabled level costs only the format dispatch. *)
let logf l fmt =
  if enabled l then Printf.ksprintf (fun s -> !sink ("[sp] " ^ s)) fmt
  else Printf.ikfprintf (fun () -> ()) () fmt

let info fmt = logf Info fmt
let debug fmt = logf Debug fmt
