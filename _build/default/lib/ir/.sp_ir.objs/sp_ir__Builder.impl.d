lib/ir/builder.ml: List Memseg Op Program Region Sp_machine Subscript Vreg
