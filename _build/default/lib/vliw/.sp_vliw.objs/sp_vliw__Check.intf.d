lib/vliw/check.mli: Format Prog Sp_machine
