lib/util/table.ml: Fmt List String
