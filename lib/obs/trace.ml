(** Monotonic-clock spans and instants; see the interface for the
    zero-cost-when-disabled contract. *)

type value = I of int | F of float | S of string | B of bool

type event =
  | Span of {
      name : string;
      ts : int64;
      dur : int64;
      args : (string * value) list;
    }
  | Instant of { name : string; ts : int64; args : (string * value) list }

let on = ref false
let buf : event list ref = ref []   (* newest first *)
let t0 = ref 0L

(* Domain-local redirection: a parallel compilation task runs inside
   {!collect}, which points this cell at a private buffer so worker
   domains never touch the shared [buf]. The driver {!inject}s each
   task's events back in deterministic loop order. Cross-domain
   visibility of [on]/[t0] is provided by the pool's queue mutex
   ([Sp_util.Pool]): both are written before tasks are submitted. *)
let local_buf : event list ref option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let push e =
  match !(Domain.DLS.get local_buf) with
  | Some b -> b := e :: !b
  | None -> buf := e :: !buf

let enabled () = !on

let enable () =
  buf := [];
  t0 := Monotonic_clock.now ();
  on := true

let disable () = on := false

let now_rel () = Int64.sub (Monotonic_clock.now ()) !t0

let no_args () = []

let instant ?(args = no_args) name =
  if !on then push (Instant { name; ts = now_rel (); args = args () })

let span ?(args = no_args) name f =
  if not !on then f ()
  else begin
    let ts = now_rel () in
    match f () with
    | v ->
      push (Span { name; ts; dur = Int64.sub (now_rel ()) ts; args = args () });
      v
    | exception e ->
      push
        (Span
           {
             name;
             ts;
             dur = Int64.sub (now_rel ()) ts;
             args = ("error", S (Printexc.to_string e)) :: args ();
           });
      raise e
  end

let collect f =
  let cell = Domain.DLS.get local_buf in
  let prev = !cell in
  let b = ref [] in
  cell := Some b;
  Fun.protect
    ~finally:(fun () -> cell := prev)
    (fun () ->
      let v = f () in
      (v, List.rev !b))

let inject evs = List.iter push evs

let ts_of = function Span { ts; _ } -> ts | Instant { ts; _ } -> ts

let events () =
  List.stable_sort (fun a b -> Int64.compare (ts_of a) (ts_of b)) (List.rev !buf)

(* ---- emission ----------------------------------------------------- *)

let json_of_value = function
  | I i -> Json.Int i
  | F x -> Json.Float x
  | S s -> Json.Str s
  | B b -> Json.Bool b

let us ns = Int64.to_float ns /. 1_000.0

let json_of_event e : Json.t =
  let common name ph ts args rest =
    Json.Obj
      ([
         ("name", Json.Str name);
         ("cat", Json.Str "softpipe");
         ("ph", Json.Str ph);
         ("ts", Json.Float (us ts));
       ]
      @ rest
      @ [
          ("pid", Json.Int 1);
          ("tid", Json.Int 1);
          ("args", Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) args));
        ])
  in
  match e with
  | Span { name; ts; dur; args } ->
    common name "X" ts args [ ("dur", Json.Float (us dur)) ]
  | Instant { name; ts; args } ->
    common name "i" ts args [ ("s", Json.Str "t") ]

let to_chrome () =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map json_of_event (events ())));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write_chrome oc = Json.to_channel oc (to_chrome ())

let write_jsonl oc =
  List.iter (fun e -> Json.to_channel oc (json_of_event e)) (events ())
