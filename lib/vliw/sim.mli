(** Cycle-accurate VLIW simulator.

    Timing contract (shared with the scheduler's dependence model):
    one instruction per cycle; operations read sources at issue;
    results land exactly [latency] cycles later; stores become visible
    the following cycle; control takes effect on the next instruction;
    channel operations act at issue. See DESIGN.md Section 6. *)

open Sp_ir

exception Write_conflict of string
(** Two in-flight writes landing on one register in the same cycle — a
    scheduling bug, never legal output of the compiler. *)

exception Cycle_limit of int

type result = {
  state : Machine_state.t;
  cycles : int;
  flops : int;
  dyn_ops : int;
  res_busy : int array;
      (** issue-slot uses per resource id over the whole execution —
          each issued operation contributes one use per entry of its
          reservation. Feed to {!Stats.utilization}. *)
}

val run :
  ?channels:int ->
  ?inputs:float list list ->
  ?max_cycles:int ->
  ?ctrs:int ->
  ?init:(Machine_state.t -> unit) ->
  Sp_machine.Machine.t ->
  Program.t ->
  Prog.t ->
  result
(** [run m p code] executes [code] on machine [m] against a fresh state
    for program [p] (which supplies the memory segments and register
    universe). [inputs] feeds the input channels; [init] fills memory
    before execution; [ctrs] is the number of hardware loop counters. *)

val mflops : Sp_machine.Machine.t -> result -> float
