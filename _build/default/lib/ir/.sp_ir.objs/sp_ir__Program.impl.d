lib/ir/program.ml: Fmt List Memseg Op Printf Region String Vreg
