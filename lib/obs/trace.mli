(** Structured tracing: monotonic-clock spans and instant events with
    key/value attributes, buffered in memory and dumped as Chrome
    [trace_event] JSON (loadable in [chrome://tracing] / Perfetto) or
    as one-JSON-object-per-line JSONL.

    Tracing is process-global and {e off} by default. When disabled,
    {!span} costs one branch and a closure call, and {!instant} one
    branch — no clock read, no allocation of attribute lists (attribute
    thunks are only forced while enabled). The compiler hot paths are
    instrumented unconditionally on this basis. *)

type value = I of int | F of float | S of string | B of bool

type event =
  | Span of {
      name : string;
      ts : int64;   (** start, ns since {!enable} *)
      dur : int64;  (** ns *)
      args : (string * value) list;
    }
  | Instant of { name : string; ts : int64; args : (string * value) list }

val enabled : unit -> bool

val enable : unit -> unit
(** Switch tracing on; clears the buffer and rebases the clock. *)

val disable : unit -> unit
(** Switch tracing off; buffered events are kept until {!enable}. *)

val span : ?args:(unit -> (string * value) list) -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] and, when tracing is enabled, records a
    complete span covering it. An escaping exception is recorded as an
    ["error"] attribute and re-raised. [args] is forced only when
    enabled. *)

val instant : ?args:(unit -> (string * value) list) -> string -> unit

val collect : (unit -> 'a) -> 'a * event list
(** [collect f] runs [f] with this domain's recording redirected into a
    private buffer and returns [f]'s result with the events it recorded
    (oldest first). The shared buffer is untouched, so concurrent
    domains may each run under [collect] safely; re-entrant. Used by
    the parallel compilation driver, which {!inject}s each task's
    events back in deterministic loop order. *)

val inject : event list -> unit
(** Append previously collected events to the current buffer (the
    shared one, or the enclosing {!collect}'s), preserving their
    order. *)

val with_recording : (unit -> 'a) -> ('a, exn) result * event list
(** [with_recording f] forces tracing on for this domain, runs [f]
    with recording redirected into a private buffer (like {!collect}),
    then restores the previous on/off state. Returns [f]'s outcome —
    an escaping exception is {e returned}, not re-raised, so the
    events recorded up to the escape are kept — with the events oldest
    first. The shared buffer and the clock base are untouched; an
    enclosing {!collect} (a parallel compile task) or a globally
    enabled trace never sees the recorded events. Used by the compile
    service to capture one request's span tree. *)

val events : unit -> event list
(** Buffered events in start-time order. *)

(** {1 Span trees} *)

type tree =
  | Node of {
      t_name : string;
      t_dur : int64;
      t_args : (string * value) list;
      t_children : tree list;
    }

val tree_of_events : event list -> tree list
(** Reconstruct the span forest from a completion-ordered event list
    (what {!collect} / {!with_recording} return): a span's children
    are the spans and instants its [ts, ts+dur] interval contains,
    oldest first. Instants become zero-duration leaves. *)

val skeleton_json : tree -> Json.t
val skeletons_json : tree list -> Json.t
(** Names and nesting only — no timestamps, durations or attributes —
    so the skeleton of a deterministic computation is byte-stable and
    comparable across runs, job counts and machines. A leaf renders as
    a bare string, an inner node as [{"name", "children"}]. *)

val tree_json : tree -> Json.t
val trees_json : tree list -> Json.t
(** Full form: name, [dur_us], attributes and children — for inline
    trace responses and daemon-side JSONL logs, where wall-clock
    durations are wanted. *)

val to_chrome : unit -> Json.t
(** The buffer as a Chrome [trace_event] document:
    [{"traceEvents": [...]}] with ["X"] (complete) and ["i"] (instant)
    phases, timestamps in microseconds. *)

val write_chrome : out_channel -> unit
val write_jsonl : out_channel -> unit
