(** Unit and property tests for [Sp_util]. *)

open Sp_util

let check_int = Alcotest.(check int)

(* ---- Intmath ------------------------------------------------------ *)

let test_gcd () =
  check_int "gcd 12 18" 6 (Intmath.gcd 12 18);
  check_int "gcd 0 5" 5 (Intmath.gcd 0 5);
  check_int "gcd 5 0" 5 (Intmath.gcd 5 0);
  check_int "gcd 0 0" 0 (Intmath.gcd 0 0);
  check_int "gcd -12 18" 6 (Intmath.gcd (-12) 18);
  check_int "gcd 7 13" 1 (Intmath.gcd 7 13)

let test_lcm () =
  check_int "lcm 4 6" 12 (Intmath.lcm 4 6);
  check_int "lcm 1 9" 9 (Intmath.lcm 1 9);
  check_int "lcm 0 9" 0 (Intmath.lcm 0 9);
  check_int "lcm_list []" 1 (Intmath.lcm_list []);
  check_int "lcm_list [2;3;4]" 12 (Intmath.lcm_list [ 2; 3; 4 ])

let test_ceil_div () =
  check_int "7/2" 4 (Intmath.ceil_div 7 2);
  check_int "8/2" 4 (Intmath.ceil_div 8 2);
  check_int "1/5" 1 (Intmath.ceil_div 1 5);
  check_int "0/5" 0 (Intmath.ceil_div 0 5);
  check_int "-1/5" 0 (Intmath.ceil_div (-1) 5);
  check_int "-7/2" (-3) (Intmath.ceil_div (-7) 2);
  Alcotest.check_raises "zero divisor"
    (Invalid_argument "Intmath.ceil_div: non-positive divisor") (fun () ->
      ignore (Intmath.ceil_div 3 0))

let test_floor_div () =
  check_int "7/2" 3 (Intmath.floor_div 7 2);
  check_int "-7/2" (-4) (Intmath.floor_div (-7) 2);
  check_int "-8/2" (-4) (Intmath.floor_div (-8) 2)

let test_divisors () =
  Alcotest.(check (list int)) "divisors 12" [ 1; 2; 3; 4; 6; 12 ]
    (Intmath.divisors 12);
  Alcotest.(check (list int)) "divisors 1" [ 1 ] (Intmath.divisors 1);
  Alcotest.(check (list int)) "divisors 7" [ 1; 7 ] (Intmath.divisors 7)

let test_smallest_divisor_geq () =
  (* the register-count rounding rule of the paper's Section 2.3 *)
  check_int "u=6 q=4 -> 6" 6 (Intmath.smallest_divisor_geq ~u:6 ~q:4);
  check_int "u=6 q=2 -> 2" 2 (Intmath.smallest_divisor_geq ~u:6 ~q:2);
  check_int "u=6 q=3 -> 3" 3 (Intmath.smallest_divisor_geq ~u:6 ~q:3);
  check_int "u=12 q=5 -> 6" 6 (Intmath.smallest_divisor_geq ~u:12 ~q:5);
  check_int "u=7 q=2 -> 7" 7 (Intmath.smallest_divisor_geq ~u:7 ~q:2)

let test_range () =
  Alcotest.(check (list int)) "range 2 5" [ 2; 3; 4 ] (Intmath.range 2 5);
  Alcotest.(check (list int)) "range 3 3" [] (Intmath.range 3 3);
  Alcotest.(check (list int)) "range 5 2" [] (Intmath.range 5 2)

(* ---- properties --------------------------------------------------- *)

let pos_gen = QCheck2.Gen.int_range 1 1000

let prop_gcd_divides =
  QCheck2.Test.make ~name:"gcd divides both arguments" ~count:500
    QCheck2.Gen.(pair pos_gen pos_gen)
    (fun (a, b) ->
      let g = Intmath.gcd a b in
      g > 0 && a mod g = 0 && b mod g = 0)

let prop_gcd_lcm =
  QCheck2.Test.make ~name:"gcd * lcm = a * b" ~count:500
    QCheck2.Gen.(pair pos_gen pos_gen)
    (fun (a, b) -> Intmath.gcd a b * Intmath.lcm a b = a * b)

let prop_ceil_div =
  QCheck2.Test.make ~name:"ceil_div bounds" ~count:500
    QCheck2.Gen.(pair (int_range (-1000) 1000) pos_gen)
    (fun (a, b) ->
      let c = Intmath.ceil_div a b in
      (c * b >= a) && ((c - 1) * b < a))

let prop_divisor_rule =
  QCheck2.Test.make ~name:"smallest_divisor_geq is a divisor and minimal"
    ~count:500
    QCheck2.Gen.(
      let* u = int_range 1 60 in
      let* q = int_range 1 u in
      return (u, q))
    (fun (u, q) ->
      let d = Intmath.smallest_divisor_geq ~u ~q in
      u mod d = 0 && d >= q
      && List.for_all
           (fun d' -> d' < q || d' >= d)
           (Intmath.divisors u))

(* ---- Histogram / Table -------------------------------------------- *)

let test_histogram () =
  let h = Histogram.of_list ~lo:0.0 ~width:1.0 ~buckets:4 [ 0.5; 1.5; 1.7; 9.0; -2.0 ] in
  check_int "count" 5 (Histogram.count h);
  (* -2 clamps into bucket 0; 9 clamps into the last bucket *)
  check_int "bucket0" 2 h.Histogram.counts.(0);
  check_int "bucket1" 2 h.Histogram.counts.(1);
  check_int "bucket3" 1 h.Histogram.counts.(3);
  Alcotest.(check (float 1e-9)) "mean" 2.14 (Histogram.mean h)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_table () =
  let t = Table.create ~headers:[ "a"; "b" ] ~aligns:[ Table.L; Table.R ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "yy"; "22" ];
  let s = Fmt.str "%a" Table.pp t in
  Alcotest.(check bool) "renders all rows" true
    (String.length s > 0 && contains s "yy" && contains s "22");
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.add_row: wrong arity") (fun () ->
      Table.add_row t [ "only-one" ])

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    ("gcd", `Quick, test_gcd);
    ("lcm", `Quick, test_lcm);
    ("ceil_div", `Quick, test_ceil_div);
    ("floor_div", `Quick, test_floor_div);
    ("divisors", `Quick, test_divisors);
    ("smallest_divisor_geq", `Quick, test_smallest_divisor_geq);
    ("range", `Quick, test_range);
    ("histogram", `Quick, test_histogram);
    ("table", `Quick, test_table);
    qt prop_gcd_divides;
    qt prop_gcd_lcm;
    qt prop_ceil_div;
    qt prop_divisor_rule;
  ]
