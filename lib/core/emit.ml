(** Code emission.

    Turns scheduled fragments into VLIW instructions:

    - straight-line slots become instruction words;
    - a reduced conditional expands into a diamond — one shared
      instruction holding the test plus everything co-scheduled at its
      first slot, then the two branch bodies, {e each also containing a
      copy of every operation the parent scheduled in parallel with the
      construct} (paper Section 3.1), padded to a common length so the
      surrounding schedule's timing holds on both paths;
    - a reduced loop expands into (peel +) prolog + unrolled kernel +
      epilog, with the two-version scheme of Section 2.4 when the trip
      count is a run-time value.

    The pipelined loop layout follows the schedule exactly: operation
    [x] of iteration [i] issues at time [sigma(x) + i*s]; the prolog
    covers times [0, (SC-1)*s), each kernel copy one [s]-window of the
    steady state ([u] copies, [u] = the modulo-variable-expansion
    unrolling degree), and the epilog drains the last [SC-1]
    iterations. *)

open Sp_ir
open Sp_machine
module Asm = Sp_vliw.Prog.Asm
module Inst = Sp_vliw.Inst

let payload_len = function
  | Sunit.P_op _ -> 1
  | Sunit.P_if { then_; else_; _ } ->
    1 + max (Array.length then_) (Array.length else_)
  | Sunit.P_loop { prolog; epilog; _ } ->
    Array.length prolog + 1 + Array.length epilog

(* ------------------------------------------------------------------ *)
(* Fragment emission                                                   *)
(* ------------------------------------------------------------------ *)

let no_extras : Op.t list array = [||]

let () = Sp_util.Fault.register "emit.kernel"

let rec emit_slots asm ~rename ~depth (frag : Sunit.frag)
    ~(extras : Op.t list array) =
  let n = Array.length frag in
  let ex k = if k < Array.length extras then extras.(k) else [] in
  (* parent-level operations occupying relative slot [j] of the
     construct that starts at slot [!k] *)
  let k = ref 0 in
  while !k < n do
    let slot = frag.(!k) in
    match slot.Sunit.sctl with
    | None ->
      Asm.inst asm
        (List.rev_map (Op.map_regs rename) slot.Sunit.sops
        @ List.map (Op.map_regs rename) (ex !k));
      incr k
    | Some p ->
      let len = payload_len p in
      let window j =
        let kk = !k + j in
        if kk >= n then ex kk
        else begin
          (match frag.(kk).Sunit.sctl with
          | Some _ when j > 0 ->
            invalid_arg "Emit: overlapping control constructs"
          | _ -> ());
          List.rev frag.(kk).Sunit.sops @ ex kk
        end
      in
      (match p with
      | Sunit.P_op _ ->
        invalid_arg "Emit: simple operation stored as control payload"
      | Sunit.P_if { cond; then_; else_ } ->
        emit_diamond asm ~rename ~depth ~cond ~then_ ~else_ ~window ~len
      | Sunit.P_loop { prolog; epilog; mid } ->
        let plen = Array.length prolog and elen = Array.length epilog in
        emit_slots asm ~rename ~depth prolog
          ~extras:(Array.init plen window);
        (match window plen with
        | [] -> ()
        | _ ->
          invalid_arg "Emit: operations scheduled into a loop's steady state");
        mid.Sunit.emit_mid ~rename ~depth asm;
        emit_slots asm ~rename ~depth epilog
          ~extras:(Array.init elen (fun j -> window (plen + 1 + j))));
      k := !k + len
  done

and emit_diamond asm ~rename ~depth ~cond ~then_ ~else_ ~window ~len =
  let lb = len - 1 in
  let pad f =
    Array.init lb (fun j ->
        if j < Array.length f then f.(j) else Sunit.empty_slot ())
  in
  let l_else = Asm.fresh_label asm in
  let l_end = Asm.fresh_label asm in
  Asm.inst asm
    ~ctl:(Inst.CJump { cond = rename cond; if_zero = true; target = l_else })
    (List.map (Op.map_regs rename) (window 0));
  let branch_extras = Array.init lb (fun j -> window (j + 1)) in
  emit_slots asm ~rename ~depth (pad then_) ~extras:branch_extras;
  Asm.attach_ctl asm (Inst.Jump l_end);
  Asm.place asm l_else;
  emit_slots asm ~rename ~depth (pad else_) ~extras:branch_extras;
  Asm.place asm l_end

(* ------------------------------------------------------------------ *)
(* Fragment construction from schedules                                *)
(* ------------------------------------------------------------------ *)

(** Place one (renamed) unit instance at slot [t] of [frag], extending
    the reservation accumulator. *)
let place frag resv_acc (u : Sunit.t) ~rename ~t =
  let payload = Sunit.subst_payload rename u.Sunit.payload in
  (match payload with
  | Sunit.P_op op -> frag.(t).Sunit.sops <- op :: frag.(t).Sunit.sops
  | p ->
    (match frag.(t).Sunit.sctl with
    | Some _ -> invalid_arg "Emit.place: two constructs in one slot"
    | None -> frag.(t).Sunit.sctl <- Some p));
  List.iter (fun (o, r) -> resv_acc := (t + o, r) :: !resv_acc) u.Sunit.resv

let identity_rename (r : Vreg.t) = r

(** The sequentially executed body: every unit at its compacted time,
    padded to the restart interval [r_len]. *)
let seq_frag (units : Sunit.t array) (p : Listsched.placement) ~r_len :
    Sunit.frag * (int * int) list =
  let frag = Sunit.empty_frag (max 1 r_len) in
  let resv = ref [] in
  Array.iteri
    (fun i u -> place frag resv u ~rename:identity_rename ~t:p.Listsched.times.(i))
    units;
  (frag, !resv)

type pipe_frags = {
  f_prolog : Sunit.frag;
  f_kernel : Sunit.frag;
  f_epilog : Sunit.frag;
  prolog_resv : (int * int) list;
  epilog_resv : (int * int) list;
  sc : int;       (** stage count *)
  unroll : int;
}

(** Expand a modulo schedule into prolog / unrolled-kernel / epilog
    fragments with modulo-variable-expansion renaming per iteration. *)
let pipe_frags (units : Sunit.t array) (sched : Modsched.schedule)
    (mve : Mve.t) : pipe_frags =
  Sp_util.Fault.point "emit.kernel";
  let s = sched.Modsched.s in
  let sc = sched.Modsched.sc in
  let u = mve.Mve.unroll in
  let p_len = (sc - 1) * s in
  let e_len = max 0 (sched.Modsched.span - s) in
  let f_prolog = Sunit.empty_frag (max 1 p_len) in
  let f_kernel = Sunit.empty_frag (u * s) in
  let f_epilog = Sunit.empty_frag (max 1 e_len) in
  let p_resv = ref [] and k_resv = ref [] and e_resv = ref [] in
  Array.iteri
    (fun x (unit_ : Sunit.t) ->
      let sigma = sched.Modsched.times.(x) in
      (* prolog: iterations whose instance falls before the steady state *)
      let i = ref 0 in
      while sigma + (!i * s) < p_len do
        place f_prolog p_resv unit_
          ~rename:(Mve.rename mve ~iter:!i)
          ~t:(sigma + (!i * s));
        incr i
      done;
      (* kernel: u instances, one per s-window *)
      let k0 = ((sigma - p_len) mod s + s) mod s in
      let i0 = (p_len + k0 - sigma) / s in
      for j = 0 to u - 1 do
        place f_kernel k_resv unit_
          ~rename:(Mve.rename mve ~iter:(i0 + j))
          ~t:(k0 + (j * s))
      done;
      (* epilog: the last sc-1 iterations drain; iteration numbering is
         congruent to (sc-1) mod u by construction of the peel count *)
      let b = ref 0 in
      while sigma - ((!b + 1) * s) >= 0 do
        let t = sigma - ((!b + 1) * s) in
        let iter = ((sc - 1 - 1 - !b) mod u + u) mod u in
        place f_epilog e_resv unit_ ~rename:(Mve.rename mve ~iter) ~t;
        incr b
      done)
    units;
  {
    f_prolog;
    f_kernel;
    f_epilog;
    prolog_resv = !p_resv;
    epilog_resv = !e_resv;
    sc;
    unroll = u;
  }

(* ------------------------------------------------------------------ *)
(* Loop middle emitters                                                *)
(* ------------------------------------------------------------------ *)

(** Emit a chain of scalar setup operations, one per instruction, each
    followed by enough empty words for its result to be readable. *)
let emit_op_chain asm (m : Machine.t) ~rename ops =
  List.iter
    (fun (op : Op.t) ->
      Asm.inst asm [ Op.map_regs rename op ];
      for _ = 2 to Machine.latency m op.Op.kind do
        Asm.inst asm []
      done)
    ops

type count = Known of int | Runtime of Vreg.t

(** Emit a counted loop over [body] (a fragment), using hardware
    counter [depth]. A loop node is charged one slot of its parent's
    schedule for the loop proper ({!payload_len}), so even a
    statically zero-trip loop must emit one (empty) word — dropping it
    would land every parent operation after the construct a cycle
    early, breaking latencies of parent values in flight across it. *)
let emit_counted_loop asm ~rename ~depth ~count (body : Sunit.frag) =
  let body_once () =
    emit_slots asm ~rename ~depth:(depth + 1) body ~extras:no_extras
  in
  match count with
  | Known 0 -> Asm.inst asm []
  | Known k ->
    Asm.attach_ctl asm (Inst.CtrSet { ctr = depth; value = k });
    let l_top = Asm.fresh_label asm in
    Asm.place asm l_top;
    body_once ();
    Asm.attach_ctl asm (Inst.CtrLoop { ctr = depth; target = l_top })
  | Runtime v ->
    (* CtrSetR reads a register at issue: it must not piggyback on an
       earlier instruction, where the value may not have landed yet *)
    Asm.inst asm ~ctl:(Inst.CtrSetR { ctr = depth; reg = rename v }) [];
    let l_skip = Asm.fresh_label asm in
    let l_top = Asm.fresh_label asm in
    Asm.attach_ctl asm
      (Inst.CtrJumpLt { ctr = depth; bound = 1; target = l_skip });
    Asm.place asm l_top;
    body_once ();
    Asm.attach_ctl asm (Inst.CtrLoop { ctr = depth; target = l_top });
    Asm.place asm l_skip

(** Emit kernel passes: counter-driven repetition of the unrolled
    steady state.

    The word between the prolog's last instruction and the kernel's
    first is part of the modulo timeline — inserting anything there
    shifts every in-flight prolog value by a cycle. An immediate
    counter set piggybacks on the previous word ([attach_ctl]); a
    register-read counter set cannot (the register may land later), so
    run-time pass counts must be preset {e before} the prolog with
    {!preset_counter}, and the kernel emitted with [preset = true]. *)
let preset_counter asm ~rename ~depth ~passes =
  match passes with
  | Known k -> Asm.attach_ctl asm (Inst.CtrSet { ctr = depth; value = k })
  | Runtime v ->
    Asm.inst asm ~ctl:(Inst.CtrSetR { ctr = depth; reg = rename v }) []

let emit_kernel ?(preset = false) asm ~rename ~depth ~passes
    (kernel : Sunit.frag) =
  match passes with
  | Known k when k <= 0 -> ()
  | _ ->
    if not preset then begin
      match passes with
      | Known k -> Asm.attach_ctl asm (Inst.CtrSet { ctr = depth; value = k })
      | Runtime _ ->
        invalid_arg
          "Emit.emit_kernel: run-time pass counts must be preset before \
           the prolog"
    end;
    let l_top = Asm.fresh_label asm in
    Asm.place asm l_top;
    emit_slots asm ~rename ~depth:(depth + 1) kernel ~extras:no_extras;
    Asm.attach_ctl asm (Inst.CtrLoop { ctr = depth; target = l_top })
