(** Unit and property tests for [Sp_util]. *)

open Sp_util

let check_int = Alcotest.(check int)

(* ---- Intmath ------------------------------------------------------ *)

let test_gcd () =
  check_int "gcd 12 18" 6 (Intmath.gcd 12 18);
  check_int "gcd 0 5" 5 (Intmath.gcd 0 5);
  check_int "gcd 5 0" 5 (Intmath.gcd 5 0);
  check_int "gcd 0 0" 0 (Intmath.gcd 0 0);
  check_int "gcd -12 18" 6 (Intmath.gcd (-12) 18);
  check_int "gcd 7 13" 1 (Intmath.gcd 7 13)

let test_lcm () =
  check_int "lcm 4 6" 12 (Intmath.lcm 4 6);
  check_int "lcm 1 9" 9 (Intmath.lcm 1 9);
  check_int "lcm 0 9" 0 (Intmath.lcm 0 9);
  check_int "lcm_list []" 1 (Intmath.lcm_list []);
  check_int "lcm_list [2;3;4]" 12 (Intmath.lcm_list [ 2; 3; 4 ])

let test_ceil_div () =
  check_int "7/2" 4 (Intmath.ceil_div 7 2);
  check_int "8/2" 4 (Intmath.ceil_div 8 2);
  check_int "1/5" 1 (Intmath.ceil_div 1 5);
  check_int "0/5" 0 (Intmath.ceil_div 0 5);
  check_int "-1/5" 0 (Intmath.ceil_div (-1) 5);
  check_int "-7/2" (-3) (Intmath.ceil_div (-7) 2);
  Alcotest.check_raises "zero divisor"
    (Invalid_argument "Intmath.ceil_div: non-positive divisor") (fun () ->
      ignore (Intmath.ceil_div 3 0))

let test_floor_div () =
  check_int "7/2" 3 (Intmath.floor_div 7 2);
  check_int "-7/2" (-4) (Intmath.floor_div (-7) 2);
  check_int "-8/2" (-4) (Intmath.floor_div (-8) 2)

let test_divisors () =
  Alcotest.(check (list int)) "divisors 12" [ 1; 2; 3; 4; 6; 12 ]
    (Intmath.divisors 12);
  Alcotest.(check (list int)) "divisors 1" [ 1 ] (Intmath.divisors 1);
  Alcotest.(check (list int)) "divisors 7" [ 1; 7 ] (Intmath.divisors 7)

let test_smallest_divisor_geq () =
  (* the register-count rounding rule of the paper's Section 2.3 *)
  check_int "u=6 q=4 -> 6" 6 (Intmath.smallest_divisor_geq ~u:6 ~q:4);
  check_int "u=6 q=2 -> 2" 2 (Intmath.smallest_divisor_geq ~u:6 ~q:2);
  check_int "u=6 q=3 -> 3" 3 (Intmath.smallest_divisor_geq ~u:6 ~q:3);
  check_int "u=12 q=5 -> 6" 6 (Intmath.smallest_divisor_geq ~u:12 ~q:5);
  check_int "u=7 q=2 -> 7" 7 (Intmath.smallest_divisor_geq ~u:7 ~q:2)

let test_range () =
  Alcotest.(check (list int)) "range 2 5" [ 2; 3; 4 ] (Intmath.range 2 5);
  Alcotest.(check (list int)) "range 3 3" [] (Intmath.range 3 3);
  Alcotest.(check (list int)) "range 5 2" [] (Intmath.range 5 2)

(* ---- properties --------------------------------------------------- *)

let pos_gen = QCheck2.Gen.int_range 1 1000

let prop_gcd_divides =
  QCheck2.Test.make ~name:"gcd divides both arguments" ~count:500
    QCheck2.Gen.(pair pos_gen pos_gen)
    (fun (a, b) ->
      let g = Intmath.gcd a b in
      g > 0 && a mod g = 0 && b mod g = 0)

let prop_gcd_lcm =
  QCheck2.Test.make ~name:"gcd * lcm = a * b" ~count:500
    QCheck2.Gen.(pair pos_gen pos_gen)
    (fun (a, b) -> Intmath.gcd a b * Intmath.lcm a b = a * b)

let prop_ceil_div =
  QCheck2.Test.make ~name:"ceil_div bounds" ~count:500
    QCheck2.Gen.(pair (int_range (-1000) 1000) pos_gen)
    (fun (a, b) ->
      let c = Intmath.ceil_div a b in
      (c * b >= a) && ((c - 1) * b < a))

let prop_divisor_rule =
  QCheck2.Test.make ~name:"smallest_divisor_geq is a divisor and minimal"
    ~count:500
    QCheck2.Gen.(
      let* u = int_range 1 60 in
      let* q = int_range 1 u in
      return (u, q))
    (fun (u, q) ->
      let d = Intmath.smallest_divisor_geq ~u ~q in
      u mod d = 0 && d >= q
      && List.for_all
           (fun d' -> d' < q || d' >= d)
           (Intmath.divisors u))

(* ---- Histogram / Table -------------------------------------------- *)

let test_histogram () =
  let h = Histogram.of_list ~lo:0.0 ~width:1.0 ~buckets:4 [ 0.5; 1.5; 1.7; 9.0; -2.0 ] in
  check_int "count" 5 (Histogram.count h);
  (* -2 clamps into bucket 0; 9 clamps into the last bucket *)
  check_int "bucket0" 2 h.Histogram.counts.(0);
  check_int "bucket1" 2 h.Histogram.counts.(1);
  check_int "bucket3" 1 h.Histogram.counts.(3);
  Alcotest.(check (float 1e-9)) "mean" 2.14 (Histogram.mean h)

let test_histogram_quantile () =
  (* 10 samples, one per unit bucket: quantiles are exact ranks *)
  let h =
    Histogram.of_list ~lo:0.0 ~width:1.0 ~buckets:10
      (List.init 10 (fun i -> float_of_int i +. 0.5))
  in
  let q p = Option.get (Histogram.quantile h p) in
  Alcotest.(check (float 1e-9)) "q0 = min" 0.5 (q 0.0);
  Alcotest.(check (float 1e-9)) "q1 = max" 9.5 (q 1.0);
  Alcotest.(check (float 1e-9)) "median" 4.5 (q 0.5);
  Alcotest.(check (float 1e-9)) "p90" 8.5 (q 0.9);
  Alcotest.check_raises "q outside [0,1]"
    (Invalid_argument "Histogram.quantile: q outside [0,1]") (fun () ->
      ignore (Histogram.quantile h 1.5))

let test_histogram_empty_singleton () =
  let e = Histogram.create ~lo:0.0 ~width:1.0 ~buckets:4 in
  Alcotest.(check bool) "empty quantile" true (Histogram.quantile e 0.5 = None);
  Alcotest.(check bool) "empty min" true (Histogram.minimum e = None);
  Alcotest.(check bool) "empty max" true (Histogram.maximum e = None);
  Alcotest.(check (float 1e-9)) "empty mean" 0.0 (Histogram.mean e);
  let s = Histogram.of_list ~lo:0.0 ~width:1.0 ~buckets:4 [ 2.25 ] in
  (* extrema-clamping makes every quantile of a singleton exact *)
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "singleton q%.2f" p)
        2.25
        (Option.get (Histogram.quantile s p)))
    [ 0.0; 0.25; 0.5; 1.0 ]

let test_histogram_merge () =
  let mk xs = Histogram.of_list ~lo:0.0 ~width:2.0 ~buckets:3 xs in
  let a = mk [ 0.5; 3.0 ] and b = mk [ 1.0; 5.0; -4.0 ] in
  let m = Histogram.merge a b in
  check_int "merged count" 5 (Histogram.count m);
  check_int "merged bucket0" 3 m.Histogram.counts.(0);
  Alcotest.(check (float 1e-9))
    "merged min" (-4.0)
    (Option.get (Histogram.minimum m));
  Alcotest.(check (float 1e-9))
    "merged max" 5.0
    (Option.get (Histogram.maximum m));
  Alcotest.(check (float 1e-9))
    "merged mean" (5.5 /. 5.0) (Histogram.mean m);
  (* merging an empty histogram is the identity *)
  let id = Histogram.merge a (mk []) in
  check_int "identity count" (Histogram.count a) (Histogram.count id);
  Alcotest.check_raises "shape mismatch"
    (Invalid_argument "Histogram.merge: shape mismatch") (fun () ->
      ignore
        (Histogram.merge a (Histogram.create ~lo:0.0 ~width:1.0 ~buckets:3)))

let hist_eq a b =
  Histogram.same_shape a b
  && a.Histogram.counts = b.Histogram.counts
  && Histogram.count a = Histogram.count b
  && Float.abs (Histogram.mean a -. Histogram.mean b) < 1e-9
  && Histogram.minimum a = Histogram.minimum b
  && Histogram.maximum a = Histogram.maximum b

let prop_merge_assoc =
  QCheck2.Test.make ~name:"histogram merge is associative/commutative"
    ~count:200
    QCheck2.Gen.(
      triple
        (small_list (float_range (-3.0) 12.0))
        (small_list (float_range (-3.0) 12.0))
        (small_list (float_range (-3.0) 12.0)))
    (fun (xs, ys, zs) ->
      let mk l = Histogram.of_list ~lo:0.0 ~width:1.5 ~buckets:6 l in
      let a = mk xs and b = mk ys and c = mk zs in
      hist_eq
        (Histogram.merge (Histogram.merge a b) c)
        (Histogram.merge a (Histogram.merge b c))
      && hist_eq (Histogram.merge a b) (Histogram.merge b a))

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_table () =
  let t = Table.create ~headers:[ "a"; "b" ] ~aligns:[ Table.L; Table.R ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "yy"; "22" ];
  let s = Fmt.str "%a" Table.pp t in
  Alcotest.(check bool) "renders all rows" true
    (String.length s > 0 && contains s "yy" && contains s "22");
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.add_row: wrong arity") (fun () ->
      Table.add_row t [ "only-one" ])

(* ---- Pool --------------------------------------------------------- *)

let test_pool_order_and_reuse () =
  let pool = Pool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  check_int "width" 4 (Pool.jobs pool);
  Alcotest.(check (list int))
    "results in submission order"
    (List.init 20 (fun i -> i * i))
    (Pool.run pool (List.init 20 (fun i () -> i * i)));
  (* the same pool serves further batches — workers park, not exit *)
  Alcotest.(check (list int))
    "second batch on the same pool" [ 10; 20 ]
    (Pool.run pool [ (fun () -> 10); (fun () -> 20) ]);
  Alcotest.(check (list int)) "empty batch" [] (Pool.run pool [])

let test_pool_exception_propagation () =
  let pool = Pool.create ~jobs:3 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let ran = Array.make 6 false in
  (match
     Pool.run pool
       (List.init 6 (fun i () ->
            ran.(i) <- true;
            if i = 4 then failwith "late";
            if i = 2 then failwith "early";
            i))
   with
  | _ -> Alcotest.fail "expected the batch to raise"
  | exception Failure m ->
    (* the lowest-indexed failure is surfaced — what a sequential
       List.map would have raised first *)
    Alcotest.(check string) "lowest-index error wins" "early" m);
  Alcotest.(check bool)
    "every task still ran to completion" true
    (Array.for_all Fun.id ran)

let test_pool_sequential_bypass () =
  (* ~jobs:1 must never spawn: every task runs on the calling domain
     (the zero-cost guarantee the E14 overhead smoke relies on) *)
  let pool = Pool.create ~jobs:1 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  check_int "clamped width" 1 (Pool.jobs pool);
  let self = Domain.self () in
  Alcotest.(check bool)
    "tasks run on the calling domain" true
    (List.for_all
       (fun d -> d = self)
       (Pool.run pool (List.init 3 (fun _ () -> Domain.self ()))));
  (* clamping: non-positive widths behave like 1 *)
  let p0 = Pool.create ~jobs:0 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p0) @@ fun () ->
  check_int "jobs:0 clamps to 1" 1 (Pool.jobs p0)

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    ("gcd", `Quick, test_gcd);
    ("lcm", `Quick, test_lcm);
    ("ceil_div", `Quick, test_ceil_div);
    ("floor_div", `Quick, test_floor_div);
    ("divisors", `Quick, test_divisors);
    ("smallest_divisor_geq", `Quick, test_smallest_divisor_geq);
    ("range", `Quick, test_range);
    ("histogram", `Quick, test_histogram);
    ("histogram quantile", `Quick, test_histogram_quantile);
    ("histogram empty/singleton", `Quick, test_histogram_empty_singleton);
    ("histogram merge", `Quick, test_histogram_merge);
    ("table", `Quick, test_table);
    ("pool order and reuse", `Quick, test_pool_order_and_reuse);
    ("pool exception propagation", `Quick, test_pool_exception_propagation);
    ("pool sequential bypass", `Quick, test_pool_sequential_bypass);
    qt prop_merge_assoc;
    qt prop_gcd_divides;
    qt prop_gcd_lcm;
    qt prop_ceil_div;
    qt prop_divisor_rule;
  ]
