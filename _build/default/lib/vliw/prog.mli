(** Assembled VLIW programs and the assembler used to build them. *)

type t = { code : Inst.t array }

val length : t -> int
val size : t -> int
(** Static code size in instruction words (the paper's Section 2.4
    metric). *)

val pp : Format.formatter -> t -> unit

module Asm : sig
  type asm

  val create : unit -> asm

  val fresh_label : asm -> Inst.label
  val place : asm -> Inst.label -> unit
  (** Bind a label to the address of the next instruction emitted. *)

  val here : asm -> int
  val inst : asm -> ?ctl:Inst.ctl -> Sp_ir.Op.t list -> unit

  val attach_ctl : asm -> Inst.ctl -> unit
  (** Attach control to the last instruction if its field is free and
      no label points past it; otherwise emit a fresh word. Only for
      control that reads no register (a register-reading field must
      occupy its own, later word — see DESIGN.md §7.5). *)

  val finish : asm -> t
  (** Resolve labels. Raises [Invalid_argument] on an unplaced label. *)
end
