(* scratch: round-trip + compile smoke for Wgen over many seeds *)
let () =
  (match Sys.argv with
  | [| _; "--show"; seed |] ->
    print_string
      (Sp_lang.Wgen.print (Sp_lang.Wgen.generate ~seed:(int_of_string seed)));
    exit 0
  | _ -> ());
  let n = try int_of_string Sys.argv.(1) with _ -> 500 in
  let bad = ref 0 in
  for seed = 1 to n do
    let p = Sp_lang.Wgen.generate ~seed in
    let src = Sp_lang.Wgen.print p in
    (try
       let p' = Sp_lang.Parser.parse src in
       if not (Sp_lang.Wgen.equal_program p p') then begin
         incr bad;
         Printf.printf "seed %d: round-trip mismatch\n%s\n" seed src
       end;
       ignore (Sp_lang.Typecheck.check p');
       let ir = Sp_lang.Lower.lower p' in
       let m = Sp_machine.Machine.warp in
       let r = Sp_core.Compile.program m ir in
       ignore r
     with ex ->
       incr bad;
       Printf.printf "seed %d: %s\n%s\n" seed (Printexc.to_string ex) src);
    if !bad > 3 then exit 1
  done;
  Printf.printf "ok: %d seeds, %d bad\n" n !bad
