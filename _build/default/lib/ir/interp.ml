(** Sequential reference interpreter.

    Executes the IR in program order, one operation at a time, with no
    notion of latency or resources. This is the golden semantics every
    schedule must preserve: tests run a program through {!run} and
    through the VLIW simulator and require
    {!Machine_state.observably_equal} final states.

    The interpreter also reports the floating-point operation count
    (the MFLOPS numerator) and the dynamic operation count. *)

type result = {
  state : Machine_state.t;
  flops : int;      (** dynamic count of floating-point operations *)
  dyn_ops : int;    (** dynamic count of all operations *)
}

exception Unbound_trip_count of string

let run ?(channels = 2) ?(inputs = []) ?(init = fun (_ : Machine_state.t) -> ())
    (p : Program.t) : result =
  let st = Machine_state.create ~channels p in
  List.iteri (fun ch xs -> Machine_state.set_input st ch xs) inputs;
  init st;
  let ctx = Machine_state.ctx st in
  let flops = ref 0 and dyn = ref 0 in
  let exec_op (op : Op.t) =
    incr dyn;
    if Op.is_flop op then incr flops;
    match (Semantics.exec ctx op, op.dst) with
    | Some v, Some d -> Machine_state.write st d v
    | None, None -> ()
    | Some _, None -> ()
    | None, Some _ ->
      raise (Semantics.Type_error "operation with dst produced no value")
  in
  let trip (n : Region.bound) =
    match n with
    | Region.Const k -> k
    | Region.Reg v -> (
      match Machine_state.read st v with
      | Semantics.VI k -> k
      | Semantics.VF _ ->
        raise (Unbound_trip_count "trip count in float register"))
  in
  let rec go (r : Region.t) =
    match r with
    | Region.Ops ops -> List.iter exec_op ops
    | Region.Seq rs -> List.iter go rs
    | Region.If { cond; then_; else_ } -> (
      match Machine_state.read st cond with
      | Semantics.VI 0 -> go else_
      | Semantics.VI _ -> go then_
      | Semantics.VF _ ->
        raise (Semantics.Type_error "float condition register"))
    | Region.For { iv; n; body } ->
      let n = trip n in
      for i = 0 to n - 1 do
        Machine_state.write st iv (Semantics.VI i);
        go body
      done
  in
  go p.body;
  { state = st; flops = !flops; dyn_ops = !dyn }
