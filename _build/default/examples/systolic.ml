(** Systolic-array scenario: the matrix-multiplication cell program.

    A Warp cell sits in a linear array; operands stream past on the
    communication queues while a block of one matrix stays in cell
    memory. This example runs the cell program on the simulator with
    synthesized neighbour traffic (exactly what a middle cell sees),
    validates it against the sequential interpreter, and checks the
    steady state reaches one multiply-add per cycle — the initiation
    interval of 1 that makes the 10-cell array's 100 MFLOPS peak
    reachable.

    Run with: [dune exec examples/systolic.exe] *)

open Sp_ir
module C = Sp_core.Compile

let n = 32

let src =
  Printf.sprintf
    {|
program matmul_cell;
var b : array [0..%d] of float;    { resident block of B }
    a, c : float;
begin
  for t := 0 to %d do begin
    receive(a, 0);                 { A element from the left neighbour }
    receive(c, 1);                 { partial sum from the left }
    send(a, 0);                    { pass A to the right neighbour }
    send(c + a * b[t], 1);         { forward the updated partial sum }
  end
end.
|}
    ((n * n) - 1)
    ((n * n) - 1)

let () =
  let p = Sp_lang.Lower.compile_source src in
  let m = Sp_machine.Machine.warp in
  let r = C.program m p in
  Fmt.pr "cell program schedule:@.";
  List.iter (fun lr -> Fmt.pr "  %a@." C.pp_loop_report lr) r.C.loops;
  let a_stream =
    List.init (n * n) (fun i -> 1.0 +. (0.01 *. float_of_int (i mod 89)))
  in
  let c_stream = List.map (fun x -> 0.125 *. x) a_stream in
  let inputs = [ a_stream; c_stream ] in
  let init st =
    Machine_state.init_farray st (Program.find_seg p "b") (fun i ->
        0.5 +. (0.001 *. float_of_int i))
  in
  let oracle = Interp.run ~inputs ~init p in
  let sim = Sp_vliw.Sim.run ~inputs ~init m p r.C.code in
  let ok =
    Machine_state.observably_equal oracle.Interp.state sim.Sp_vliw.Sim.state
  in
  Fmt.pr "@.%d multiply-adds in %d cycles = %.2f cycles/element@."
    (n * n) sim.Sp_vliw.Sim.cycles
    (float_of_int sim.Sp_vliw.Sim.cycles /. float_of_int (n * n));
  Fmt.pr "cell: %.2f MFLOPS;  a 10-cell array: %.1f MFLOPS (paper: 79.4)@."
    (Sp_vliw.Sim.mflops m sim)
    (10.0 *. Sp_vliw.Sim.mflops m sim);
  Fmt.pr "outputs match the sequential interpreter: %b@." ok;
  Fmt.pr "first partial sums: %a@."
    Fmt.(list ~sep:(any ", ") (fmt "%.3f"))
    (List.filteri (fun i _ -> i < 5) (Machine_state.outputs sim.Sp_vliw.Sim.state 1));
  (* and now on a REAL 10-cell array with blocking queues, rather than
     the paper's one-tenth-per-cell accounting *)
  let res =
    Sp_vliw.Array_sim.run ~cells:10
      ~feed:inputs
      ~init:(fun _ st -> init st)
      m p [| r.C.code |]
  in
  Fmt.pr
    "@.10-cell co-simulation: %d cycles, %d flops, %.1f MFLOPS measured@."
    res.Sp_vliw.Array_sim.cycles res.Sp_vliw.Array_sim.flops
    (Sp_vliw.Array_sim.mflops m res);
  Fmt.pr "per-cell stall counts: %a@."
    Fmt.(array ~sep:(any " ") int)
    res.Sp_vliw.Array_sim.per_cell_stalls;
  Fmt.pr
    "(the paper claims homogeneous programs 'never stall on input or@.\
    \ output' after setup — the stall counts above test that claim)@." 
