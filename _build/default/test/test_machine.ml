(** Tests for the machine descriptions. *)

open Sp_machine

let test_warp_resources () =
  let m = Machine.warp in
  let r name = (Machine.find_resource m name).Machine.count in
  Alcotest.(check int) "one adder" 1 (r "fadd");
  Alcotest.(check int) "one multiplier" 1 (r "fmul");
  Alcotest.(check int) "one memory port" 1 (r "mem");
  Alcotest.(check int) "one sequencer" 1 (r "seq");
  Alcotest.(check int) "two address generators" 2 (r "agu");
  Alcotest.check_raises "unknown resource"
    (Invalid_argument "Machine.find_resource: no resource \"nope\" in warp")
    (fun () -> ignore (Machine.find_resource m "nope"))

let test_warp_latencies () =
  let m = Machine.warp in
  (* the paper: 5-stage pipelines plus the 2-cycle register-file delay *)
  Alcotest.(check int) "fadd" 7 (Machine.latency m Opkind.Fadd);
  Alcotest.(check int) "fmul" 7 (Machine.latency m Opkind.Fmul);
  Alcotest.(check int) "alu" 1 (Machine.latency m Opkind.Iadd);
  Alcotest.(check int) "store has no result" 0 (Machine.latency m Opkind.Store)

let test_scaling () =
  let m2 = Machine.warp_scaled ~width:2 in
  Alcotest.(check int) "two adders" 2
    (Machine.find_resource m2 "fadd").Machine.count;
  Alcotest.(check int) "registers scale" (62 * 2) m2.Machine.fregs;
  Alcotest.(check int) "still one sequencer" 1
    (Machine.find_resource m2 "seq").Machine.count;
  Alcotest.check_raises "width >= 1"
    (Invalid_argument "Machine.warp_scaled: width < 1") (fun () ->
      ignore (Machine.warp_scaled ~width:0))

let test_mflops () =
  let m = Machine.warp in
  (* 5 MHz clock: 2 flops/cycle = the 10 MFLOPS peak of the paper *)
  Alcotest.(check (float 1e-9)) "peak" 10.0
    (Machine.mflops m ~flops:2000 ~cycles:1000);
  Alcotest.(check (float 1e-9)) "zero cycles" 0.0
    (Machine.mflops m ~flops:10 ~cycles:0)

let test_reservations_offset0 () =
  (* every opkind of each machine reserves at offset 0 only (the
     checker and emitter rely on it for exactness) *)
  List.iter
    (fun m ->
      List.iter
        (fun k ->
          List.iter
            (fun (off, rid) ->
              Alcotest.(check int)
                (Printf.sprintf "%s/%s offset" m.Machine.name
                   (Opkind.to_string k))
                0 off;
              Alcotest.(check bool) "valid rid" true
                (rid >= 0 && rid < Machine.num_resources m))
            (Machine.reservation m k))
        [ Opkind.Fadd; Opkind.Fmul; Opkind.Load; Opkind.Store; Opkind.Iadd;
          Opkind.Amov; Opkind.Recv 0; Opkind.Send 1; Opkind.Fconst ])
    [ Machine.warp; Machine.toy; Machine.serial ]

let test_opkind_meta () =
  Alcotest.(check bool) "fadd is flop" true (Opkind.is_flop Opkind.Fadd);
  Alcotest.(check bool) "fcmp not flop" false
    (Opkind.is_flop (Opkind.Fcmp Opkind.Lt));
  Alcotest.(check bool) "seeds count as flops" true (Opkind.is_flop Opkind.Frecs);
  Alcotest.(check int) "fadd arity" 2 (Opkind.arity Opkind.Fadd);
  Alcotest.(check int) "fsel arity" 3 (Opkind.arity Opkind.Fsel);
  Alcotest.(check int) "load arity" 0 (Opkind.arity Opkind.Load);
  Alcotest.(check bool) "store no dst" false (Opkind.has_dst Opkind.Store);
  Alcotest.(check bool) "negate lt" true
    (Opkind.negate_rel Opkind.Lt = Opkind.Ge)

let suite =
  [
    ("warp resources", `Quick, test_warp_resources);
    ("warp latencies", `Quick, test_warp_latencies);
    ("scaling", `Quick, test_scaling);
    ("mflops accounting", `Quick, test_mflops);
    ("reservations at offset 0", `Quick, test_reservations_offset0);
    ("opkind metadata", `Quick, test_opkind_meta);
  ]
