(** Recursive-descent parser for the W2-like language.

    Grammar (informal):
    {v
      program  ::= "program" ident ";" ["var" decl+] block ["."]
      decl     ::= ident ("," ident)* ":" type ";"
      type     ::= "int" | "float"
                 | ["independent"] "array" "[" range ("," range)* "]"
                   "of" ("int" | "float")
      range    ::= int ".." int
      block    ::= "begin" stmt* "end"
      stmt     ::= lvalue ":=" expr ";"
                 | "if" expr "then" body ["else" body]
                 | "for" ident ":=" expr "to" expr "do" body
                 | "send" "(" expr ["," int] ")" ";"
                 | "receive" "(" lvalue ["," int] ")" ";"
      body     ::= block | stmt
      expr     ::= standard precedence: or < and < not < relational
                   < additive < multiplicative < unary < primary
    v} *)

exception Error of Token.pos * string

let err p fmt = Fmt.kstr (fun s -> raise (Error (p, s))) fmt

type state = { mutable toks : (Token.pos * Token.t) list }

let peek st = match st.toks with [] -> assert false | (p, t) :: _ -> (p, t)

let advance st =
  match st.toks with [] -> assert false | _ :: rest -> st.toks <- rest

let next st =
  let pt = peek st in
  advance st;
  pt

let expect st tok =
  let p, t = next st in
  if t <> tok then
    err p "expected %s, found %s" (Token.to_string tok) (Token.to_string t)

let accept st tok =
  match peek st with
  | _, t when t = tok ->
    advance st;
    true
  | _ -> false

let ident st =
  match next st with
  | _, Token.IDENT s -> s
  | p, t -> err p "expected identifier, found %s" (Token.to_string t)

let int_lit st =
  match next st with
  | _, Token.INT n -> n
  | _, Token.MINUS -> (
    match next st with
    | _, Token.INT n -> -n
    | p, t -> err p "expected integer, found %s" (Token.to_string t))
  | p, t -> err p "expected integer, found %s" (Token.to_string t)

(* ---- expressions -------------------------------------------------- *)

let rec expr st = expr_or st

and expr_or st =
  let rec go lhs =
    if accept st Token.OR then
      let rhs = expr_and st in
      go { Ast.e_pos = lhs.Ast.e_pos; e = Ast.Ebin (Ast.Or, lhs, rhs) }
    else lhs
  in
  go (expr_and st)

and expr_and st =
  let rec go lhs =
    if accept st Token.AND then
      let rhs = expr_rel st in
      go { Ast.e_pos = lhs.Ast.e_pos; e = Ast.Ebin (Ast.And, lhs, rhs) }
    else lhs
  in
  go (expr_rel st)

and expr_rel st =
  let lhs = expr_add st in
  let mk op =
    advance st;
    let rhs = expr_add st in
    { Ast.e_pos = lhs.Ast.e_pos; e = Ast.Ebin (op, lhs, rhs) }
  in
  match peek st with
  | _, Token.EQ -> mk Ast.Eq
  | _, Token.NE -> mk Ast.Ne
  | _, Token.LT -> mk Ast.Lt
  | _, Token.LE -> mk Ast.Le
  | _, Token.GT -> mk Ast.Gt
  | _, Token.GE -> mk Ast.Ge
  | _ -> lhs

and expr_add st =
  let rec go lhs =
    match peek st with
    | _, Token.PLUS ->
      advance st;
      let rhs = expr_mul st in
      go { Ast.e_pos = lhs.Ast.e_pos; e = Ast.Ebin (Ast.Add, lhs, rhs) }
    | _, Token.MINUS ->
      advance st;
      let rhs = expr_mul st in
      go { Ast.e_pos = lhs.Ast.e_pos; e = Ast.Ebin (Ast.Sub, lhs, rhs) }
    | _ -> lhs
  in
  go (expr_mul st)

and expr_mul st =
  let rec go lhs =
    match peek st with
    | _, Token.STAR ->
      advance st;
      let rhs = expr_unary st in
      go { Ast.e_pos = lhs.Ast.e_pos; e = Ast.Ebin (Ast.Mul, lhs, rhs) }
    | _, Token.SLASH ->
      advance st;
      let rhs = expr_unary st in
      go { Ast.e_pos = lhs.Ast.e_pos; e = Ast.Ebin (Ast.Div, lhs, rhs) }
    | _ -> lhs
  in
  go (expr_unary st)

and expr_unary st =
  match peek st with
  | p, Token.MINUS ->
    advance st;
    let e = expr_unary st in
    { Ast.e_pos = p; e = Ast.Eun (Ast.Neg, e) }
  | p, Token.NOT ->
    advance st;
    let e = expr_unary st in
    { Ast.e_pos = p; e = Ast.Eun (Ast.Not, e) }
  | _ -> expr_primary st

and expr_primary st =
  match next st with
  | p, Token.INT n -> { Ast.e_pos = p; e = Ast.Eint n }
  | p, Token.FLOAT f -> { Ast.e_pos = p; e = Ast.Efloat f }
  | p, Token.TFLOAT ->
    (* conversion call: float(e) *)
    expect st Token.LPAREN;
    let a = expr st in
    expect st Token.RPAREN;
    { Ast.e_pos = p; e = Ast.Ecall ("float", [ a ]) }
  | p, Token.TINT ->
    expect st Token.LPAREN;
    let a = expr st in
    expect st Token.RPAREN;
    { Ast.e_pos = p; e = Ast.Ecall ("int", [ a ]) }
  | p, Token.LPAREN ->
    let e = expr st in
    expect st Token.RPAREN;
    { e with Ast.e_pos = p }
  | p, Token.IDENT name -> (
    match peek st with
    | _, Token.LBRACKET ->
      advance st;
      let idx = index_list st in
      { Ast.e_pos = p; e = Ast.Eindex (name, idx) }
    | _, Token.LPAREN ->
      advance st;
      let args =
        if accept st Token.RPAREN then []
        else
          let rec go acc =
            let a = expr st in
            if accept st Token.COMMA then go (a :: acc)
            else begin
              expect st Token.RPAREN;
              List.rev (a :: acc)
            end
          in
          go []
      in
      { Ast.e_pos = p; e = Ast.Ecall (name, args) }
    | _ -> { Ast.e_pos = p; e = Ast.Evar name })
  | p, t -> err p "expected expression, found %s" (Token.to_string t)

and index_list st =
  let rec go acc =
    let e = expr st in
    if accept st Token.COMMA then go (e :: acc)
    else begin
      expect st Token.RBRACKET;
      List.rev (e :: acc)
    end
  in
  go []

(* ---- statements --------------------------------------------------- *)

let lvalue st =
  let p, _ = peek st in
  let name = ident st in
  if accept st Token.LBRACKET then Ast.Lindex (name, index_list st, p)
  else Ast.Lvar (name, p)

let rec stmt st : Ast.stmt =
  match peek st with
  | p, Token.IF ->
    advance st;
    let c = expr st in
    expect st Token.THEN;
    let t = body st in
    let e = if accept st Token.ELSE then body st else [] in
    { Ast.s_pos = p; s = Ast.Sif (c, t, e) }
  | p, Token.FOR ->
    advance st;
    let var = ident st in
    expect st Token.ASSIGN;
    let lo = expr st in
    expect st Token.TO;
    let hi = expr st in
    expect st Token.DO;
    let b = body st in
    { Ast.s_pos = p; s = Ast.Sfor { var; lo; hi; body = b } }
  | p, Token.IDENT "send" ->
    advance st;
    expect st Token.LPAREN;
    let e = expr st in
    let ch = if accept st Token.COMMA then int_lit st else 0 in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    { Ast.s_pos = p; s = Ast.Ssend (e, ch) }
  | p, Token.IDENT "receive" ->
    advance st;
    expect st Token.LPAREN;
    let lv = lvalue st in
    let ch = if accept st Token.COMMA then int_lit st else 0 in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    { Ast.s_pos = p; s = Ast.Sreceive (lv, ch) }
  | p, _ ->
    let lv = lvalue st in
    expect st Token.ASSIGN;
    let e = expr st in
    expect st Token.SEMI;
    { Ast.s_pos = p; s = Ast.Sassign (lv, e) }

and body st : Ast.stmt list =
  if accept st Token.BEGIN then begin
    let rec go acc =
      match peek st with
      | _, Token.END ->
        advance st;
        (* optional semicolon after end *)
        ignore (accept st Token.SEMI);
        List.rev acc
      | _ -> go (stmt st :: acc)
    in
    go []
  end
  else [ stmt st ]

(* ---- declarations -------------------------------------------------- *)

let ty_of_token p = function
  | Token.TINT -> Ast.Tint
  | Token.TFLOAT -> Ast.Tfloat
  | t -> err p "expected a type, found %s" (Token.to_string t)

let decl_type st : Ast.decl_kind =
  let independent = accept st Token.INDEPENDENT in
  if accept st Token.ARRAY then begin
    expect st Token.LBRACKET;
    let rec dims acc =
      let lo = int_lit st in
      expect st Token.DOTDOT;
      let hi = int_lit st in
      if accept st Token.COMMA then dims ((lo, hi) :: acc)
      else begin
        expect st Token.RBRACKET;
        List.rev ((lo, hi) :: acc)
      end
    in
    let dims = dims [] in
    expect st Token.OF;
    let p, t = next st in
    Ast.Darray { elem = ty_of_token p t; dims; independent }
  end
  else begin
    if independent then begin
      let p, _ = peek st in
      err p "'independent' applies to arrays only"
    end;
    let p, t = next st in
    Ast.Dscalar (ty_of_token p t)
  end

let decls st : Ast.decl list =
  if not (accept st Token.VAR) then []
  else begin
    let out = ref [] in
    let rec one () =
      (* ident ("," ident)* ":" type ";" *)
      let p, _ = peek st in
      let names =
        let rec go acc =
          let n = ident st in
          if accept st Token.COMMA then go (n :: acc) else List.rev (n :: acc)
        in
        go []
      in
      expect st Token.COLON;
      let kind = decl_type st in
      expect st Token.SEMI;
      List.iter
        (fun n -> out := { Ast.d_name = n; d_pos = p; d_kind = kind } :: !out)
        names;
      match peek st with
      | _, Token.IDENT _ -> one ()
      | _ -> ()
    in
    one ();
    List.rev !out
  end

let program_of_tokens toks : Ast.program =
  let st = { toks } in
  expect st Token.PROGRAM;
  let name = ident st in
  expect st Token.SEMI;
  let ds = decls st in
  let b = body st in
  ignore (accept st Token.DOT);
  (match peek st with
  | _, Token.EOF -> ()
  | p, t -> err p "trailing input: %s" (Token.to_string t));
  { Ast.p_name = name; p_decls = ds; p_body = b }

(** Parse a full program from source text. *)
let parse src = program_of_tokens (Lexer.tokenize src)
