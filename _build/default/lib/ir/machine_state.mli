(** Architectural state shared by the reference interpreter and the
    VLIW simulators: register file, per-segment data memory, and the
    communication queues. Final states are comparable — that is how
    every schedule is validated against the sequential semantics. *)

open Semantics

type t

val create : ?channels:int -> Program.t -> t
(** Fresh state for a program: registers zeroed (integer zero), memory
    segments zero-filled, queues empty. *)

val set_input : t -> int -> float list -> unit
(** Queue input data on a channel. *)

val outputs : t -> int -> float list
(** Everything sent on an output channel, in order. *)

val read : t -> Vreg.t -> value
val write : t -> Vreg.t -> value -> unit

exception Out_of_bounds of string
exception Channel_empty of int

val load : t -> Memseg.t -> int -> value
val store : t -> Memseg.t -> int -> value -> unit
val recv : t -> int -> float
val send : t -> int -> float -> unit

val init_farray : t -> Memseg.t -> (int -> float) -> unit
val init_iarray : t -> Memseg.t -> (int -> int) -> unit
val get_farray : t -> Memseg.t -> float array
val get_iarray : t -> Memseg.t -> int array

val observably_equal : t -> t -> bool
(** Memory and channel outputs equal (NaN-tolerant); registers are not
    compared — schedules legitimately leave different garbage in
    temporaries. *)

val ctx : t -> Semantics.ctx
(** Direct execution context over this state (used by the sequential
    interpreter). *)
