lib/ir/memseg.ml: Fmt
