(** Deterministic work-cost accounting for the compiler's hot paths.

    Wall time cannot be gated in CI, so the profiler counts {e work
    units} instead — MRT placement probes, Spath relaxations and
    frontier insertions, ready-heap operations, exact-search nodes
    split by prune reason, dependence edges walked, schedule-cache
    verification edge checks — the same currency SMT/SAT schedulers
    report (decisions, conflicts, mapping attempts). Counts are pure
    functions of the compilation, so two runs of the same input agree
    to the last unit whatever the machine load or the job count.

    Counts are attributed per {e phase} × per {e loop}: the compile
    driver stamps the current loop and phase; instrumented modules
    ({!Sp_core.Mrt}, [Spath], [Listsched], [Sp_opt.Exact], the schedule
    cache) only bump counters and stay ignorant of the attribution.

    {b Recording contract} (the same as {!Explain}): disabled by
    default, and every instrumented site guards with {!enabled} — one
    global load and branch, no allocation — so the default compile path
    is unaffected (enforced by bench E14). Under {!collect} the
    recording state is domain-local, so parallel analysis tasks never
    race; a task's profile is re-injected by the driver. {!merge} is
    associative and commutative with {!empty} as identity, so shard
    profiles combine into the same totals in any order — the
    [-j 1 ≡ -j N] identity the qcheck laws and the byte-stable
    [bench --table cost] artifact pin down.

    Wall-clock and GC observations ({!observe}) are kept entirely
    outside profiles: they appear only in the human report, never in
    {!to_json} or {!folded}, so gated artifacts stay deterministic. *)

(** The work units. Names ({!counter_name}) follow the metric naming
    scheme, [subsystem.quantity]. *)
type counter =
  | Mrt_probe            (** reservation-table placement probes ([Mrt.fits]) *)
  | Spath_relax          (** Bellman–Ford relaxation steps in [Spath] *)
  | Spath_insert         (** Pareto-frontier insertions in [Spath] *)
  | Heap_op              (** ready-heap pushes and pops ([Listsched]) *)
  | Exact_node           (** branch-and-bound nodes expanded ([Exact]) *)
  | Exact_prune_window   (** exact-search prunes: emptied windows *)
  | Exact_prune_resource (** exact-search prunes: resource conflicts *)
  | Exact_nogood_hit     (** exact-search candidates rejected by the
                             learned-nogood bank *)
  | Exact_backjump       (** exact-search non-chronological backtracks *)
  | Ddg_edge             (** dependence edges built/walked ([Ddg.build]) *)
  | Cache_verify_edge    (** schedule-cache hit-verification edge checks *)

val all_counters : counter list
val counter_name : counter -> string

(** Compilation phases, stamped by [Sp_core.Compile] around the
    corresponding per-loop steps. [Other] is the ambient default. *)
type phase =
  | P_ddg
  | P_compact
  | P_bounds
  | P_search
  | P_certify
  | P_mve
  | P_emit
  | P_validate
  | P_cache
  | P_other

val all_phases : phase list
val phase_name : phase -> string

(** {1 Recording} *)

val enabled : unit -> bool
(** When false (the default), {!add}/{!incr} are one load and branch
    and allocate nothing. *)

val enable : unit -> unit
(** Reset the ambient profile and start counting. *)

val disable : unit -> unit
val clear : unit -> unit

val set_loop : int -> unit
(** Stamp subsequent counts with this loop id ([-1] = outside any
    loop, the initial value). No-op when disabled. *)

val set_phase : phase -> unit
(** Stamp subsequent counts with this phase. No-op when disabled. *)

val with_phase : phase -> (unit -> 'a) -> 'a
(** Run [f] under {!set_phase}, restoring the previous phase on every
    exit path (so a degrading loop still attributes its partial counts
    to the right phase). When disabled this is just [f ()]. *)

val current_loop : unit -> int
(** The loop stamp of the active recording state ([-1] outside any
    loop). Drivers that fan work out under {!collect} re-stamp the
    fresh state with this so collected profiles stay attributed. *)

val current_phase : unit -> phase
(** The phase stamp of the active recording state. *)

val add : counter -> int -> unit
(** Count [n] units of work against the current (loop, phase) cell. *)

val incr : counter -> unit
(** [add c 1]. *)

(** {1 Profiles} *)

type profile
(** An immutable snapshot: (loop, phase) cells of counter totals.
    Canonically ordered, so structural equality is profile equality. *)

val empty : profile
val is_empty : profile -> bool

val row : loop:int -> phase -> (counter * int) list -> profile
(** A single-cell profile (test and doctoring helper). Zero counts are
    dropped; an all-zero row is {!empty}. *)

val merge : profile -> profile -> profile
(** Pointwise sum. Associative, commutative, {!empty} is the
    identity. *)

val equal : profile -> profile -> bool
val total : profile -> int

val counter_totals : profile -> (counter * int) list
(** Per-counter grand totals in {!all_counters} order (zeros kept, so
    the shape is fixed). *)

val loop_total : profile -> loop:int -> int
(** All work attributed to one loop across every phase. *)

val cells : profile -> ((int * phase) * (counter * int) list) list
(** The raw cells, canonically ordered: loops ascending with [-1]
    (outside) last, phases in {!all_phases} order, counters in
    {!all_counters} order, zero counts dropped. *)

val snapshot : unit -> profile
(** The ambient profile recorded since {!enable}/{!clear}. *)

val collect : (unit -> 'a) -> 'a * profile
(** Run [f] with recording redirected to a fresh domain-local profile
    and return what it recorded; the previous state is restored on
    every exit path. The driver re-injects collected profiles in loop
    order ({!inject}) — since {!merge} is commutative this yields the
    same ambient profile as a sequential run. *)

val inject : profile -> unit
(** Merge a collected profile into the current recording state. *)

(** {1 Report-only wall/GC observation} *)

val observe : (unit -> 'a) -> 'a
(** Accumulate the wall-clock nanoseconds and minor-heap words spent
    in [f] into the report-only section. Never part of a {!profile},
    {!to_json} or {!folded} — the human report alone shows it. *)

val observed : unit -> (int64 * float) option
(** Accumulated (wall ns, minor words) since {!enable}, when {!observe}
    ran. *)

(** {1 Output} *)

val schema : string
(** ["cost/1"] — the tag {!to_json} carries. *)

val to_json : profile -> Json.t
(** Deterministic, wall-clock-free: schema tag, grand totals, and the
    per-loop per-phase cells in canonical order. *)

val folded : profile -> string
(** Folded-stacks lines (["loop3;search;mrt.probes 1234\n"]), one per
    nonzero (loop, phase, counter) in canonical order — feedable to
    standard flame-graph tooling and to {!Render.flame_html}. *)

val flame : profile -> Render.flame_node list
(** The loop → phase → counter hierarchy as flame/treemap input. *)

val pp : Format.formatter -> profile -> unit
(** Human report: grand totals, per-loop phase breakdown, and the
    report-only wall/GC line when {!observe} ran. *)

val report : profile -> string
