(** Image-processing scenario: a 3x3 convolution written in the W2-like
    source language (the workload class the paper's Warp machine was
    built for), compiled with and without software pipelining.

    Demonstrates: the front end, nested loops, the scheduling report,
    per-loop initiation intervals vs. their lower bounds, and the
    speed-up over basic-block compaction.

    Run with: [dune exec examples/convolution.exe] *)

module C = Sp_core.Compile
module Kernel = Sp_kernels.Kernel

let n = 24

let src =
  Printf.sprintf
    {|
program convolution;
var p : array [0..%d, 0..%d] of float;   { input image }
    o : array [0..%d, 0..%d] of float;   { output image }
    i, j : int;
begin
  for i := 0 to %d do
    for j := 0 to %d do
      o[i,j] := 0.0625*p[i,j]   + 0.125*p[i,j+1]   + 0.0625*p[i,j+2]
              + 0.125 *p[i+1,j] + 0.25 *p[i+1,j+1] + 0.125 *p[i+1,j+2]
              + 0.0625*p[i+2,j] + 0.125*p[i+2,j+1] + 0.0625*p[i+2,j+2];
end.
|}
    (n + 1) (n + 1) (n - 1) (n - 1) (n - 1) (n - 1)

let () =
  let kernel =
    Kernel.mk "conv3x3" ~init:(Kernel.init_all_arrays ~seed:9) (Kernel.W2 src)
  in
  let m = Sp_machine.Machine.warp in
  Fmt.pr "Compiling a %dx%d 3x3 convolution for the Warp-like cell...@.@." n n;
  let factor, piped, local = Kernel.speedup m kernel in
  Fmt.pr "pipelined schedule:@.";
  List.iter (fun lr -> Fmt.pr "  %a@." C.pp_loop_report lr) piped.Kernel.loops;
  Fmt.pr "@.";
  Fmt.pr "  %-22s %8s %8s@." "" "pipelined" "baseline";
  Fmt.pr "  %-22s %8d %8d@." "cycles" piped.Kernel.cycles local.Kernel.cycles;
  Fmt.pr "  %-22s %8d %8d@." "code size (words)" piped.Kernel.code_size
    local.Kernel.code_size;
  Fmt.pr "  %-22s %8.2f %8.2f@." "cell MFLOPS" piped.Kernel.mflops
    local.Kernel.mflops;
  Fmt.pr "@.speed-up: %.2fx   semantics preserved: %b@." factor
    (piped.Kernel.sem_ok && local.Kernel.sem_ok);
  Fmt.pr
    "(the inner loop is memory-port bound: nine loads and one store per@.\
     pixel through a single-ported memory — the initiation interval's@.\
     lower bound and the achieved interval are both visible above)@."
