(** Structured scheduler decision log — the "why" behind every
    per-loop scheduling outcome.

    The core scheduler layers ({!Sp_core.Modsched}, [Mrt], [Listsched],
    [Mve], the compiler driver, and the exact scheduler of [Sp_opt])
    record one event per decision: interval bounds and which constraint
    binds, SCC scheduling order, the first failed placement of every
    probed initiation interval (with the emptied precedence window or
    the conflicting resource residue), the lifetime that forced the
    modulo-variable-expansion unroll, exact-search prune causes, and
    the final per-loop outcome.

    Recording is {e zero-cost when disabled} (the default): call sites
    guard with {!enabled} — one load and branch — and construct events
    only when the log is live. Events carry flat data only (strings and
    ints), so this module sits below the scheduler in the dependency
    order; the recorded log is deterministic (no clocks), making the
    JSON artifact byte-stable across runs. *)

(** Why a placement attempt at a probed interval failed. *)
type fail =
  | Window_empty of { lo : int; hi : int }
      (** the precedence-constrained range emptied before any slot was
          probed ([lo > hi]) *)
  | No_slot of { lo : int; hi : int; resource : string; slot : int }
      (** every slot of the window conflicted; [resource]/[slot] name
          the modulo-reservation-table residue that rejected the last
          probe *)
  | No_wrap of { lo : int; hi : int }
      (** only the wrap constraint of a reduced construct rejected the
          window's slots *)

type event =
  | Bounds of {
      res_mii : int;
      rec_mii : int;
      ctl_bound : int;
      mii : int;
      seq_len : int;
      binding : string;  (** "resource" | "recurrence" | "control" *)
      critical : string; (** human detail, e.g. the busiest resource *)
    }
  | Scc_order of { comps : int list list }
      (** condensation components in scheduling (topological) order,
          each listing its member unit ids *)
  | Probe_fail of { s : int; unit_id : int; unit_desc : string; fail : fail }
  | Probe_ok of { s : int; span : int; sc : int }
  | Fuel_out of { s : int }
  | Compact_stall of {
      unit_id : int;
      unit_desc : string;
      est : int;    (** earliest start from precedence *)
      placed : int; (** slot actually taken *)
      resource : string;
    }
      (** list scheduling pushed a unit past its earliest start on a
          resource conflict *)
  | Mve_lifetime of { reg : string; birth : int; death : int; q : int }
  | Mve_choice of {
      unroll : int;
      mode : string;
      binding_reg : string; (** the register whose q forced the unroll *)
      binding_q : int;
      fits : bool;
    }
  | Exact_probe of {
      s : int;
      verdict : string;
      spent : int;
      pruned_window : int;
      pruned_resource : int;
      nodes : int;
      nogood_hits : int;  (** candidates rejected by the nogood bank *)
      backjumps : int;    (** non-chronological backtracks *)
      learned : int;      (** nogoods recorded by this solve *)
      reused : int;       (** nogoods carried in from a prior interval *)
    }
  | Outcome of { status : string; ii : int option; cert : string option }

val enabled : unit -> bool
(** Cheap guard for call sites: when false, build no event. *)

val enable : unit -> unit
(** Start recording; clears any previous log. *)

val disable : unit -> unit
val clear : unit -> unit

val set_loop : int -> unit
(** Stamp subsequent events with this loop id ([-1] = outside any
    loop). Set by the compiler driver at each loop reduction. *)

val current_loop : unit -> int
(** The active loop stamp. Drivers that fan work out under {!collect}
    re-stamp the fresh buffer with this so collected events stay
    attributed to the right loop. *)

val record : event -> unit
(** Append an event under the current loop stamp; no-op when disabled.
    Call sites on hot paths must guard with {!enabled} so the event is
    never constructed when the log is off. *)

val collect : (unit -> 'a) -> 'a * (int * event) list
(** [collect f] runs [f] with this domain's recording (and loop stamp)
    redirected into a private buffer; returns [f]'s result and the
    stamped events it recorded, oldest first. Safe to run concurrently
    on several domains; the parallel compilation driver {!inject}s each
    task's events back in deterministic loop order. *)

val inject : (int * event) list -> unit
(** Append previously collected stamped events, preserving order. *)

val events : unit -> (int * event) list
(** [(loop, event)] pairs in recording order. *)

val to_json : unit -> Json.t
(** Deterministic artifact: events grouped per loop, loops in order of
    first appearance. Byte-stable across identical runs. *)

val pp : Format.formatter -> unit -> unit
(** Human-readable per-loop report of the recorded log. *)

val report : unit -> string
