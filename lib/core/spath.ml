(** All-points longest paths with a symbolic initiation interval.

    The paper (Section 2.2.2) computes the closure of the precedence
    constraints in each strongly connected component {e once}, "using a
    symbolic value to stand for the initiation interval", so that the
    iterative search over candidate intervals pays no recomputation.

    A path with accumulated delay [d] and accumulated iteration
    difference [w] constrains [sigma(dst) - sigma(src) >= d - s*w]. We
    represent the closure as, per node pair, the Pareto frontier of
    [(d, w)] pairs. The initiation interval only ever ranges over
    [1 .. s_max] (the upper bound is the length of the locally
    compacted iteration, which always schedules), so the exact
    dominance order is: [a] dominates [b] iff [a.d - s*a.w >= b.d -
    s*b.w] at both endpoints [s = 1] and [s = s_max] — both sides are
    linear in [s], so dominance at the endpoints is dominance
    throughout. This keeps each frontier at the lower convex hull of
    the path set (a handful of pairs) where the naive
    for-all-[s >= 0] order can blow up combinatorially on graphs with
    many parallel incomparable paths.

    Frontiers are stored flat: during the Floyd–Warshall closure each
    node pair owns a small growable int buffer of interleaved [(d, w)]
    pairs (no list cells, no per-pair boxing), and the finished closure
    is packed into one contiguous data array indexed by an offset
    table. [query] — on the modulo scheduler's per-interval hot path —
    is then a linear scan over adjacent words.

    The recurrence-constrained lower bound on the initiation interval
    (paper Section 2.2.1) is the maximum over closed paths of
    [ceil(d(c) / p(c))], computed by Bellman–Ford plus binary search. *)

type t = {
  n : int;
  s_min : int;
  s_max : int;
  off : int array;
      (* n*n + 1 entries, in pairs: frontier of (i, j) lives at pair
         indices off.(i*n + j) .. off.(i*n + j + 1) - 1 *)
  dat : int array; (* interleaved d, w; pair p at dat.(2p), dat.(2p+1) *)
}

(* growable frontier used only while computing the closure *)
type buf = { mutable a : int array; mutable len : int (* in pairs *) }

let buf_make () = { a = [||]; len = 0 }

let buf_push b d w =
  let need = 2 * (b.len + 1) in
  if Array.length b.a < need then begin
    let a = Array.make (max need (2 * Array.length b.a)) 0 in
    Array.blit b.a 0 a 0 (2 * b.len);
    b.a <- a
  end;
  b.a.(2 * b.len) <- d;
  b.a.((2 * b.len) + 1) <- w;
  b.len <- b.len + 1

let snapshot b = { a = Array.sub b.a 0 (2 * b.len); len = b.len }

(** Insert the pair [(d, w)] into frontier [b], keeping only
    non-dominated pairs. Dominance is the O(1) two-endpoint test: a
    pair's constraint value [d - s*w] is linear in [s], so comparing at
    [s_min] and [s_max] decides the whole range. *)
let insert ~s_min ~s_max b d w =
  Sp_obs.Cost.incr Sp_obs.Cost.Spath_insert;
  let v1 = d - (s_min * w) and v2 = d - (s_max * w) in
  let dominated = ref false in
  let i = ref 0 in
  while (not !dominated) && !i < b.len do
    let qd = b.a.(2 * !i) and qw = b.a.((2 * !i) + 1) in
    if qd - (s_min * qw) >= v1 && qd - (s_max * qw) >= v2 then
      dominated := true;
    incr i
  done;
  if not !dominated then begin
    (* drop pairs the new one dominates, compacting in place *)
    let keep = ref 0 in
    for i = 0 to b.len - 1 do
      let qd = b.a.(2 * i) and qw = b.a.((2 * i) + 1) in
      if not (v1 >= qd - (s_min * qw) && v2 >= qd - (s_max * qw)) then begin
        if !keep <> i then begin
          b.a.(2 * !keep) <- qd;
          b.a.((2 * !keep) + 1) <- qw
        end;
        incr keep
      end
    done;
    b.len <- !keep;
    buf_push b d w
  end

(** [compute ~n ~edges ~s_min ~s_max] over node-local indices; edges
    are [(src, dst, delay, omega)]. Queries are valid for initiation
    intervals in [s_min .. s_max]. Callers pass [s_min >=] the
    component's recurrence bound, where every dependence cycle has
    non-positive weight — then going around a cycle only ever produces
    dominated pairs and the frontiers stay at hull size. *)
let compute ~n ~edges ~s_min ~s_max =
  let s_min = max 1 s_min in
  let s_max = max s_min s_max in
  let fr = Array.init (n * n) (fun _ -> buf_make ()) in
  List.iter
    (fun (src, dst, delay, omega) ->
      insert ~s_min ~s_max fr.((src * n) + dst) delay omega)
    edges;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      let ik = fr.((i * n) + k) in
      if ik.len > 0 then
        for j = 0 to n - 1 do
          let kj = fr.((k * n) + j) in
          if kj.len > 0 then begin
            let tgt = fr.((i * n) + j) in
            (* on the diagonal passes the target aliases a source;
               snapshot so the combination reads the pre-merge
               frontier *)
            let ik = if j = k then snapshot ik else ik in
            let kj = if i = k then snapshot kj else kj in
            for p = 0 to ik.len - 1 do
              let pd = ik.a.(2 * p) and pw = ik.a.((2 * p) + 1) in
              for q = 0 to kj.len - 1 do
                insert ~s_min ~s_max tgt
                  (pd + kj.a.(2 * q))
                  (pw + kj.a.((2 * q) + 1))
              done
            done
          end
        done
    done
  done;
  (* pack the finished frontiers contiguously *)
  let off = Array.make ((n * n) + 1) 0 in
  for idx = 0 to (n * n) - 1 do
    off.(idx + 1) <- off.(idx) + fr.(idx).len
  done;
  let dat = Array.make (2 * off.(n * n)) 0 in
  Array.iteri
    (fun idx b -> Array.blit b.a 0 dat (2 * off.(idx)) (2 * b.len))
    fr;
  { n; s_min; s_max; off; dat }

(** Maximum over the frontier of [d - s*w]: the binding precedence
    constraint from [i] to [j] at initiation interval [s]. [None] when
    no path exists. Requires [s_min <= s <= s_max]. *)
let query t ~s i j =
  if s < t.s_min || s > t.s_max then
    invalid_arg "Spath.query: s out of range";
  let idx = (i * t.n) + j in
  let lo = t.off.(idx) and hi = t.off.(idx + 1) in
  if lo = hi then None
  else begin
    let m = ref min_int in
    for p = lo to hi - 1 do
      let v = t.dat.(2 * p) - (s * t.dat.((2 * p) + 1)) in
      if v > !m then m := v
    done;
    Some !m
  end

(* ------------------------------------------------------------------ *)
(* Recurrence bound, computed independently of the closure              *)
(* ------------------------------------------------------------------ *)

(** Does the graph contain a cycle of positive weight under
    [weight e = d(e) - s * omega(e)]? Bellman–Ford longest-path
    relaxation from an all-zero potential: any relaxation still
    possible after [n] sweeps exposes a positive cycle. *)
let has_positive_cycle ~n ~edges ~s =
  let dist = Array.make n 0 in
  let changed = ref true in
  let sweeps = ref 0 in
  while !changed && !sweeps <= n do
    changed := false;
    incr sweeps;
    List.iter
      (fun (u, v, d, w) ->
        let nd = dist.(u) + d - (s * w) in
        if nd > dist.(v) then begin
          dist.(v) <- nd;
          changed := true
        end)
      edges
  done;
  if Sp_obs.Cost.enabled () then
    Sp_obs.Cost.add Sp_obs.Cost.Spath_relax (!sweeps * List.length edges);
  !changed

(** The recurrence-constrained lower bound on the initiation interval
    (paper Section 2.2.1): the smallest [s] at which no dependence
    cycle has positive weight — equivalently
    [max over cycles ceil(d(c)/p(c))]. Cycle weight is decreasing in
    [s], so binary search applies. Returns [s_max + 2] when even
    [s_max + 1] leaves a positive cycle (a bound beyond the serial
    restart length — not pipelinable in range — or an illegal
    zero-omega positive cycle). *)
let rec_mii_bound ~n ~edges ~s_max =
  if not (has_positive_cycle ~n ~edges ~s:1) then 1
  else if has_positive_cycle ~n ~edges ~s:(s_max + 1) then s_max + 2
  else begin
    (* invariant: positive cycle exists at lo - 1, none at hi *)
    let rec bs lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if has_positive_cycle ~n ~edges ~s:mid then bs (mid + 1) hi
        else bs lo mid
    in
    bs 2 (s_max + 1)
  end
