(** Resource reservation tables.

    {!Modulo} is the modulo resource reservation table of the paper's
    Section 2.1: "the resource usage of time t is mapped to that of
    time [t mod s]". {!Linear} is the unbounded table used when
    compacting straight-line code (no wrap-around). Both support
    tentative placement (check without committing).

    A failed [fits] probe additionally records its {e conflict}: the
    first (slot, resource) pair whose limit the reservation would
    exceed, scanning the reservation in list order — deterministic, so
    the explainability layer can name the binding resource. Exactly one
    conflict is charged per failed probe (the property the qcheck suite
    checks), accumulated per resource in {!Modulo.conflicts}. *)

open Sp_machine

module Modulo = struct
  type t = {
    s : int;
    counts : int array array; (* [s][num_resources] *)
    limits : int array;
    conflicts : int array;    (* failed probes charged per resource *)
    mutable last_conflict : (int * int) option; (* (slot, rid) *)
  }

  let create (m : Machine.t) ~s =
    if s <= 0 then invalid_arg "Mrt.Modulo.create: s <= 0";
    {
      s;
      counts = Array.make_matrix s (Machine.num_resources m) 0;
      limits = Array.map (fun r -> r.Machine.count) m.resources;
      conflicts = Array.make (Machine.num_resources m) 0;
      last_conflict = None;
    }

  (* A reservation may use one resource several times at offsets
     congruent mod s (e.g. a reduced construct), so demand accumulates
     per (slot, resource) as the reservation is scanned; the first
     entry that pushes a pair over its limit is the conflict. The scan
     tentatively increments the live counters and undoes them before
     returning, which keeps the check O(|resv|) without a side table. *)
  let fits t ~at resv =
    let undo added =
      List.iter
        (fun (slot, rid) -> t.counts.(slot).(rid) <- t.counts.(slot).(rid) - 1)
        added
    in
    let rec go added = function
      | [] ->
        undo added;
        true
      | (off, rid) :: rest ->
        let slot = ((at + off) mod t.s + t.s) mod t.s in
        if t.counts.(slot).(rid) < t.limits.(rid) then begin
          t.counts.(slot).(rid) <- t.counts.(slot).(rid) + 1;
          go ((slot, rid) :: added) rest
        end
        else begin
          t.conflicts.(rid) <- t.conflicts.(rid) + 1;
          t.last_conflict <- Some (slot, rid);
          undo added;
          false
        end
    in
    go [] resv

  let add t ~at resv =
    List.iter
      (fun (off, rid) ->
        let slot = ((at + off) mod t.s + t.s) mod t.s in
        t.counts.(slot).(rid) <- t.counts.(slot).(rid) + 1)
      resv

  let remove t ~at resv =
    List.iter
      (fun (off, rid) ->
        let slot = ((at + off) mod t.s + t.s) mod t.s in
        t.counts.(slot).(rid) <- t.counts.(slot).(rid) - 1)
      resv

  let conflicts t = Array.copy t.conflicts
  let last_conflict t = t.last_conflict
end

module Linear = struct
  type t = {
    mutable counts : int array array; (* grows on demand *)
    limits : int array;
    nres : int;
    conflicts : int array;
    mutable last_conflict : (int * int) option; (* (slot, rid) *)
  }

  let create (m : Machine.t) =
    {
      counts = Array.make_matrix 16 (Machine.num_resources m) 0;
      limits = Array.map (fun r -> r.Machine.count) m.resources;
      nres = Machine.num_resources m;
      conflicts = Array.make (Machine.num_resources m) 0;
      last_conflict = None;
    }

  let ensure t len =
    let cur = Array.length t.counts in
    if len > cur then begin
      let n = max len (2 * cur) in
      let counts = Array.make_matrix n t.nres 0 in
      Array.blit t.counts 0 counts 0 cur;
      t.counts <- counts
    end

  let fits t ~at resv =
    let undo added =
      List.iter
        (fun (slot, rid) -> t.counts.(slot).(rid) <- t.counts.(slot).(rid) - 1)
        added
    in
    let rec go added = function
      | [] ->
        undo added;
        true
      | (off, rid) :: rest ->
        let slot = at + off in
        if
          slot >= 0
          && (ensure t (slot + 1);
              t.counts.(slot).(rid) < t.limits.(rid))
        then begin
          t.counts.(slot).(rid) <- t.counts.(slot).(rid) + 1;
          go ((slot, rid) :: added) rest
        end
        else begin
          t.conflicts.(rid) <- t.conflicts.(rid) + 1;
          t.last_conflict <- Some (max 0 slot, rid);
          undo added;
          false
        end
    in
    go [] resv

  let add t ~at resv =
    List.iter
      (fun (off, rid) ->
        ensure t (at + off + 1);
        t.counts.(at + off).(rid) <- t.counts.(at + off).(rid) + 1)
      resv

  let conflicts t = Array.copy t.conflicts
  let last_conflict t = t.last_conflict
end
