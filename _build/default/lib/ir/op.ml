(** IR micro-operations.

    An operation is a machine {!Sp_machine.Opkind.t} with register
    operands, an optional immediate, and — for memory operations — an
    address. These are the "minimally indivisible sequences of
    micro-instructions" of the paper's Section 2.1: the scheduler never
    splits one, and the machine description gives each a multi-cycle
    resource reservation and a result latency. *)

module Opkind = Sp_machine.Opkind

type imm = Fimm of float | Iimm of int

(** A data-memory address: [seg\[base + idx + off\]] where [base] and
    [idx] are optional registers. [sub] is the semantic subscript used
    by dependence analysis; the register operands define what the
    hardware actually computes. *)
type addr = {
  seg : Memseg.t;
  base : Vreg.t option;
  idx : Vreg.t option;
  off : int;
  sub : Subscript.t option;
}

type t = {
  uid : int;
  kind : Opkind.t;
  dst : Vreg.t option;
  srcs : Vreg.t list;
  imm : imm option;
  addr : addr option;
}

let compare a b = compare a.uid b.uid
let equal a b = a.uid = b.uid

(** Registers read at issue time: the sources, plus address registers of
    memory operations. *)
let reads op =
  let a =
    match op.addr with
    | None -> []
    | Some { base; idx; _ } ->
      List.filter_map (fun x -> x) [ base; idx ]
  in
  op.srcs @ a

let writes op = match op.dst with None -> [] | Some d -> [ d ]

(** Apply a register substitution to all operands (sources, destination
    and address registers). The uid is preserved: a renamed copy is the
    same operation for dependence purposes. *)
let map_regs f op =
  let addr =
    Option.map
      (fun a -> { a with base = Option.map f a.base; idx = Option.map f a.idx })
      op.addr
  in
  { op with dst = Option.map f op.dst; srcs = List.map f op.srcs; addr }

let is_mem op = match op.kind with Opkind.Load | Opkind.Store -> true | _ -> false
let is_load op = op.kind = Opkind.Load
let is_store op = op.kind = Opkind.Store
let is_flop op = Opkind.is_flop op.kind

let pp_imm ppf = function
  | Fimm f -> Fmt.pf ppf "%g" f
  | Iimm i -> Fmt.pf ppf "%d" i

let pp_addr ppf { seg; base; idx; off; sub } =
  let reg_part =
    String.concat "+"
      (List.filter_map (Option.map Vreg.to_string) [ base; idx ])
  in
  Fmt.pf ppf "%a[%s%+d]%a" Memseg.pp seg reg_part off
    (Fmt.option Subscript.pp)
    sub

let pp ppf op =
  (match op.dst with
  | Some d -> Fmt.pf ppf "%a <- " Vreg.pp d
  | None -> ());
  Fmt.pf ppf "%a" Opkind.pp op.kind;
  List.iter (fun s -> Fmt.pf ppf " %a" Vreg.pp s) op.srcs;
  (match op.imm with Some i -> Fmt.pf ppf " #%a" pp_imm i | None -> ());
  match op.addr with Some a -> Fmt.pf ppf " %a" pp_addr a | None -> ()

(** Operation supply: uids are dense per program so passes can use
    arrays indexed by uid. *)
module Supply = struct
  type supply = { mutable next : int }

  let create () = { next = 0 }
  let count s = s.next

  let mk s ?dst ?(srcs = []) ?imm ?addr kind =
    let uid = s.next in
    s.next <- uid + 1;
    { uid; kind; dst; srcs; imm; addr }
end
