lib/ir/expand.ml: Builder Float List Sp_machine
