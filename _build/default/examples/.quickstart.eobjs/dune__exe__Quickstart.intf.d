examples/quickstart.mli:
