(** Abstract syntax of the W2-like language.

    W2 (Gross & Lam 1986) used "conventional Pascal-like control
    constructs … to specify the cell programs, and asynchronous
    computation primitives … to specify inter-cell communication"
    (paper, Section 1). This dialect keeps exactly the constructs the
    scheduling paper exercises: scalar and (1- or 2-dimensional) array
    variables, assignments, arithmetic, [if]/[then]/[else], counted
    [for] loops, [send]/[receive], and the intrinsics INVERSE, SQRT and
    EXP that the paper expands into primitive operation sequences. *)

type pos = Token.pos

type ty = Tint | Tfloat

let pp_ty ppf = function
  | Tint -> Fmt.string ppf "int"
  | Tfloat -> Fmt.string ppf "float"

type decl = {
  d_name : string;
  d_pos : pos;
  d_kind : decl_kind;
}

and decl_kind =
  | Dscalar of ty
  | Darray of {
      elem : ty;
      dims : (int * int) list;  (** (lo, hi) per dimension, inclusive *)
      independent : bool;       (** the paper's disambiguation directive *)
    }

type binop =
  | Add | Sub | Mul | Div
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

type expr = { e_pos : pos; e : expr_node }

and expr_node =
  | Eint of int
  | Efloat of float
  | Evar of string
  | Eindex of string * expr list    (** array element *)
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Ecall of string * expr list
      (** intrinsics: sqrt, inverse, exp, abs, min, max, float, int,
          receive *)

type stmt = { s_pos : pos; s : stmt_node }

and stmt_node =
  | Sassign of lvalue * expr
  | Sif of expr * stmt list * stmt list
  | Sfor of { var : string; lo : expr; hi : expr; body : stmt list }
  | Ssend of expr * int             (** send(e) or send(e, chan) *)
  | Sreceive of lvalue * int        (** receive(x) or receive(x, chan) *)

and lvalue = Lvar of string * pos | Lindex of string * expr list * pos

type program = {
  p_name : string;
  p_decls : decl list;
  p_body : stmt list;
}

let lvalue_pos = function Lvar (_, p) -> p | Lindex (_, _, p) -> p
