(** Expansion of the W2 intrinsic functions into primitive operations,
    with the same operation counts the paper reports (Section 4.2):
    INVERSE expands into 7 and SQRT into 19 floating-point operations;
    EXP expands into a calculation containing 19 conditional
    statements. *)

(** Reciprocal: seed + two Newton–Raphson steps,
    [r' = r * (2 - x*r)]. 1 + 2*3 = 7 flops. *)
let inverse b x =
  let two = Builder.fconst b 2.0 in
  let r0 = Builder.frecs b x in
  let newton r =
    let t = Builder.fmul b x r in
    let u = Builder.fsub b two t in
    Builder.fmul b r u
  in
  newton (newton r0)

(** Square root via the reciprocal square root:
    seed + three Newton–Raphson steps
    [r' = r * (1.5 - 0.5*x*r^2)] (5 flops each), then [sqrt x = x * r].
    1 + 3*5 + 2 + 1 = 19 flops. *)
let sqrt_ b x =
  let half = Builder.fconst b 0.5 in
  let three_half = Builder.fconst b 1.5 in
  let r0 = Builder.frsqs b x in
  let newton r =
    let xr = Builder.fmul b x r in
    let xr2 = Builder.fmul b xr r in
    let h = Builder.fmul b half xr2 in
    let u = Builder.fsub b three_half h in
    Builder.fmul b r u
  in
  let r = newton (newton (newton r0)) in
  (* one extra refinement of the product, then the final multiply *)
  let s = Builder.fmul b x r in
  let s2 = Builder.fmul b s r in
  ignore s2;
  Builder.fmul b x r

(** Exponential by explicit binary scaling, producing 19 conditional
    statements as in the paper's description of the EXP library
    function (LFK 22). We compute [exp x = 2^(x * log2 e)] by peeling
    the scaled argument bit by bit: 8 integer bits and 11 fractional
    bits, each peeled by one conditional multiply. Accuracy is a few
    ULPs of the 11-bit fraction — plenty for the reproduction, whose
    point is the {e shape} of the code (a loop body too branchy to
    pipeline), not transcendental accuracy. *)
let exp_ b x =
  let log2e = Builder.fconst b 1.4426950408889634 in
  let t0 = Builder.fmul b x log2e in
  (* result accumulator and remaining-exponent variable *)
  let acc = ref (Builder.fconst b 1.0) in
  let rem = ref t0 in
  let steps =
    (* (threshold, multiplier): 8 integer bits then 11 fractional *)
    List.init 19 (fun k ->
        let e = 7 - k in
        (* 2^e for e = 7 .. -11 *)
        let thr = Float.ldexp 1.0 e in
        (thr, Float.pow 2.0 thr))
  in
  List.iter
    (fun (thr, mult) ->
      let thr_r = Builder.fconst b thr in
      let mult_r = Builder.fconst b mult in
      let c = Builder.fcmp b Sp_machine.Opkind.Ge !rem thr_r in
      let acc' = Builder.fresh_f b in
      let rem' = Builder.fresh_f b in
      Builder.if_ b c
        ~then_:(fun () ->
          let a = Builder.fmul b !acc mult_r in
          ignore (Builder.emit b ~dst:acc' ~srcs:[ a ] Sp_machine.Opkind.Fmov);
          let r = Builder.fsub b !rem thr_r in
          ignore (Builder.emit b ~dst:rem' ~srcs:[ r ] Sp_machine.Opkind.Fmov))
        ~else_:(fun () ->
          ignore
            (Builder.emit b ~dst:acc' ~srcs:[ !acc ] Sp_machine.Opkind.Fmov);
          ignore
            (Builder.emit b ~dst:rem' ~srcs:[ !rem ] Sp_machine.Opkind.Fmov));
      acc := acc';
      rem := rem')
    steps;
  !acc
