(** Tests for the IR: registers, subscripts, operations, builder. *)

open Sp_ir

(* ---- Vreg ---------------------------------------------------------- *)

let test_vreg_supply () =
  let s = Vreg.Supply.create () in
  let a = Vreg.Supply.fresh s ~name:"a" Vreg.F in
  let b = Vreg.Supply.fresh s ~name:"b" Vreg.I in
  Alcotest.(check int) "dense ids" 0 a.Vreg.id;
  Alcotest.(check int) "dense ids" 1 b.Vreg.id;
  Alcotest.(check int) "count" 2 (Vreg.Supply.count s);
  Alcotest.(check bool) "classes" true (Vreg.is_float a && not (Vreg.is_float b));
  Alcotest.(check bool) "distinct" false (Vreg.equal a b)

(* ---- Subscript ----------------------------------------------------- *)

let mk_iv () =
  let s = Vreg.Supply.create () in
  Vreg.Supply.fresh s ~name:"i" Vreg.I

let test_subscript_distance_exact () =
  let iv = mk_iv () in
  let s1 = Subscript.of_iv ~off:3 iv in
  let s2 = Subscript.of_iv ~off:1 iv in
  (match Subscript.distance ~from:s1 ~to_:s2 with
  | Subscript.Exactly 2 -> ()
  | _ -> Alcotest.fail "expected distance 2");
  (match Subscript.distance ~from:s2 ~to_:s1 with
  | Subscript.Exactly (-2) -> ()
  | _ -> Alcotest.fail "expected distance -2");
  match Subscript.distance ~from:s1 ~to_:s1 with
  | Subscript.Exactly 0 -> ()
  | _ -> Alcotest.fail "expected distance 0"

let test_subscript_strided () =
  let iv = mk_iv () in
  let a = Subscript.of_iv ~coef:4 ~off:8 iv in
  let b = Subscript.of_iv ~coef:4 ~off:0 iv in
  (match Subscript.distance ~from:a ~to_:b with
  | Subscript.Exactly 2 -> ()
  | _ -> Alcotest.fail "stride-4, 8 apart = 2 iterations");
  let c = Subscript.of_iv ~coef:4 ~off:2 iv in
  match Subscript.distance ~from:c ~to_:b with
  | Subscript.Never -> () (* 2 not divisible by 4: never aliases *)
  | _ -> Alcotest.fail "non-divisible offsets never alias"

let test_subscript_syms () =
  let s = Vreg.Supply.create () in
  let iv = Vreg.Supply.fresh s ~name:"i" Vreg.I in
  let b1 = Vreg.Supply.fresh s ~name:"b1" Vreg.I in
  let b2 = Vreg.Supply.fresh s ~name:"b2" Vreg.I in
  let a = Subscript.add_sym (Subscript.of_iv ~off:1 iv) b1 in
  let b = Subscript.add_sym (Subscript.of_iv ~off:0 iv) b1 in
  let c = Subscript.add_sym (Subscript.of_iv ~off:0 iv) b2 in
  (match Subscript.distance ~from:a ~to_:b with
  | Subscript.Exactly 1 -> ()
  | _ -> Alcotest.fail "same symbolic base: exact distance");
  match Subscript.distance ~from:a ~to_:c with
  | Subscript.Unknown -> ()
  | _ -> Alcotest.fail "different symbolic bases: unknown"

let test_subscript_invariant () =
  let a = Subscript.constant 4 in
  let b = Subscript.constant 4 in
  let c = Subscript.constant 5 in
  (match Subscript.distance ~from:a ~to_:b with
  | Subscript.Unknown -> () (* same location every iteration *)
  | _ -> Alcotest.fail "invariant same-address: all distances");
  match Subscript.distance ~from:a ~to_:c with
  | Subscript.Never -> ()
  | _ -> Alcotest.fail "distinct constants never alias"

(* ---- Op ------------------------------------------------------------ *)

let test_op_reads_writes () =
  let s = Vreg.Supply.create () in
  let ops = Op.Supply.create () in
  let x = Vreg.Supply.fresh s Vreg.F and y = Vreg.Supply.fresh s Vreg.F in
  let d = Vreg.Supply.fresh s Vreg.F in
  let idx = Vreg.Supply.fresh s Vreg.I in
  let add = Op.Supply.mk ops ~dst:d ~srcs:[ x; y ] Sp_machine.Opkind.Fadd in
  Alcotest.(check int) "reads" 2 (List.length (Op.reads add));
  Alcotest.(check int) "writes" 1 (List.length (Op.writes add));
  let seg_supply = Memseg.Supply.create () in
  let seg = Memseg.Supply.fresh seg_supply ~name:"a" ~size:10 () in
  let ld =
    Op.Supply.mk ops ~dst:d
      ~addr:{ Op.seg; base = None; idx = Some idx; off = 1; sub = None }
      Sp_machine.Opkind.Load
  in
  Alcotest.(check int) "load reads its index" 1 (List.length (Op.reads ld));
  Alcotest.(check bool) "is_load" true (Op.is_load ld);
  Alcotest.(check bool) "is_mem" true (Op.is_mem ld)

let test_op_map_regs () =
  let s = Vreg.Supply.create () in
  let ops = Op.Supply.create () in
  let x = Vreg.Supply.fresh s Vreg.F and y = Vreg.Supply.fresh s Vreg.F in
  let d = Vreg.Supply.fresh s Vreg.F in
  let x' = Vreg.Supply.fresh s Vreg.F in
  let add = Op.Supply.mk ops ~dst:d ~srcs:[ x; y ] Sp_machine.Opkind.Fadd in
  let f r = if Vreg.equal r x then x' else r in
  let add' = Op.map_regs f add in
  Alcotest.(check bool) "src renamed" true
    (Vreg.equal (List.hd add'.Op.srcs) x');
  Alcotest.(check bool) "uid preserved" true (Op.equal add add')

(* ---- Builder / Region ---------------------------------------------- *)

let test_builder_structure () =
  let b = Builder.create "t" in
  let a = Builder.farray b "a" 10 in
  let k = Builder.fconst b 1.0 in
  Builder.for_ b (Region.Const 5) (fun i ->
      let x = Builder.load_iv b a i 0 in
      let y = Builder.fadd b x k in
      Builder.store_iv b a i 0 y);
  let p = Builder.finish b in
  let st = Program.stats p in
  Alcotest.(check int) "one loop" 1 st.Program.n_loops;
  Alcotest.(check int) "one innermost" 1 st.Program.n_innermost;
  Alcotest.(check int) "no ifs" 0 st.Program.n_ifs;
  (* fconst + (amov + load + fadd + store) *)
  Alcotest.(check int) "op count" 5 st.Program.n_ops;
  Alcotest.(check bool) "finds segment" true
    (Memseg.equal (Program.find_seg p "a") a)

let test_builder_nesting () =
  let b = Builder.create "t" in
  let a = Builder.farray b "a" 100 in
  Builder.for_ b (Region.Const 3) (fun i ->
      Builder.for_ b (Region.Const 4) (fun j ->
          let x = Builder.load_sym_iv b a i j 0 in
          Builder.store_sym_iv b a i j 1 x));
  let p = Builder.finish b in
  let st = Program.stats p in
  Alcotest.(check int) "two loops" 2 st.Program.n_loops;
  Alcotest.(check int) "one innermost" 1 st.Program.n_innermost;
  Alcotest.(check bool) "contains loop" true (Region.contains_loop p.Program.body)

let test_builder_if () =
  let b = Builder.create "t" in
  let x = Builder.fconst b 1.0 in
  let c = Builder.fcmp b Sp_machine.Opkind.Gt x x in
  let out = Builder.fresh_f b in
  Builder.if_ b c
    ~then_:(fun () ->
      ignore (Builder.emit b ~dst:out ~srcs:[ x ] Sp_machine.Opkind.Fmov))
    ~else_:(fun () ->
      ignore (Builder.emit b ~dst:out ~srcs:[ x ] Sp_machine.Opkind.Fmov));
  let p = Builder.finish b in
  Alcotest.(check int) "one if" 1 (Program.stats p).Program.n_ifs;
  Alcotest.(check bool) "contains_if" true (Region.contains_if p.Program.body)

let suite =
  [
    ("vreg supply", `Quick, test_vreg_supply);
    ("subscript exact distance", `Quick, test_subscript_distance_exact);
    ("subscript strided", `Quick, test_subscript_strided);
    ("subscript symbolic bases", `Quick, test_subscript_syms);
    ("subscript invariant", `Quick, test_subscript_invariant);
    ("op reads/writes", `Quick, test_op_reads_writes);
    ("op map_regs", `Quick, test_op_map_regs);
    ("builder structure", `Quick, test_builder_structure);
    ("builder nesting", `Quick, test_builder_nesting);
    ("builder if", `Quick, test_builder_if);
  ]
