test/test_util.ml: Alcotest Array Fmt Histogram Intmath List QCheck2 QCheck_alcotest Sp_util String Table
