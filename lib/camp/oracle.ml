(** The differential oracle: one W2 source program through the whole
    pipeline, every failure mode mapped to a verdict.

    The oracle is the unit of work of the campaign — total (it never
    raises; everything a worker could throw is folded into {!Crash}),
    deterministic (same source, same config, same verdict) and
    self-contained (fixed seeded array initialization, no channel
    inputs), so a banked [.w2] file replays bit-identically anywhere.

    Verdicts, in pipeline order of detection:
    - {!Crash}: an uncaught exception escaped the front end, the
      compiler or either execution engine;
    - {!Ii_bound}: a pipelined loop's initiation interval fell outside
      the sanity window [mii <= ii <= seq_len] — below the lower bound
      means the schedule cannot be legal, above the restart interval
      means pipelining was accepted where it cannot profit;
    - {!Invalid}: the static resource check or the validator rejected
      the emitted code;
    - {!Hang}: simulation exceeded the cycle watchdog (isolates
      pathological programs so one hang cannot stall a worker);
    - {!Mismatch}: the cycle-accurate simulation disagreed with the
      sequential interpreter — the paper's core property broken;
    - {!Jobs_diverge}: compiling with [-j 1] and [-j 2] produced
      different fingerprints (parallel per-loop driver nondeterminism);
    - {!Cache_diverge}: compiling twice through one shared schedule
      cache — cold (populating) then warm (reusing) — produced a
      fingerprint differing from the direct compile (cache reuse must
      be invisible in the artifacts);
    - {!Opt_diverge}: certifying the program's loops with the exact
      scheduler's conflict learning on vs. off produced different
      per-loop optimality verdicts. Learning is pure pruning, so the
      two searches must agree wherever both decide; a disagreement
      means an unsound learned nogood (exactly what arming
      ["exact.nogood"] fabricates). Budget-capped ({!opt_fuel});
      [Unknown] on either side is incomparable, not a divergence;
    - {!Degraded}: a loop fell back after a caught internal error or
      exhausted its fuel budget. In a clean run this is a failure (no
      fault is armed, so nothing should degrade); under [--inject] it
      is the expected detection of the armed fault.

    The oracle owns one fault site of its own, ["camp.oracle"], hit
    once per invocation before compilation: arming it makes the oracle
    itself raise deterministically, which is how the crash-capture and
    crash-banking paths are exercised end to end without a real
    compiler bug. *)

module Compile = Sp_core.Compile
module Fault = Sp_util.Fault

type kind =
  | Pass
  | Crash
  | Invalid
  | Mismatch
  | Ii_bound
  | Jobs_diverge
  | Cache_diverge
  | Opt_diverge
  | Degraded
  | Hang

let kind_to_string = function
  | Pass -> "pass"
  | Crash -> "crash"
  | Invalid -> "invalid"
  | Mismatch -> "mismatch"
  | Ii_bound -> "ii-bound"
  | Jobs_diverge -> "jobs-diverge"
  | Cache_diverge -> "cache-diverge"
  | Opt_diverge -> "opt-diverge"
  | Degraded -> "degraded"
  | Hang -> "hang"

let kind_of_string = function
  | "pass" -> Some Pass
  | "crash" -> Some Crash
  | "invalid" -> Some Invalid
  | "mismatch" -> Some Mismatch
  | "ii-bound" -> Some Ii_bound
  | "jobs-diverge" -> Some Jobs_diverge
  | "cache-diverge" -> Some Cache_diverge
  | "opt-diverge" -> Some Opt_diverge
  | "degraded" -> Some Degraded
  | "hang" -> Some Hang
  | _ -> None

let all_kinds =
  [ Pass; Crash; Invalid; Mismatch; Ii_bound; Jobs_diverge; Cache_diverge;
    Opt_diverge; Degraded; Hang ]

type verdict = { kind : kind; detail : string }

type config = {
  machine : Sp_machine.Machine.t;
  fuel : int option;       (** per-loop compile-fuel watchdog *)
  max_cycles : int;        (** simulation cycle watchdog *)
  check_jobs : bool;       (** run the [-j 1] vs [-j 2] divergence oracle *)
  check_cache : bool;      (** run the cold/warm schedule-cache oracle *)
  check_opt : bool;        (** run the learn-on vs learn-off exact-certifier
                               oracle *)
  degraded_ok : bool;      (** fault-sweep mode: degradation is graceful,
                               not a failure *)
}

let default =
  {
    machine = Sp_machine.Machine.warp;
    fuel = None;
    max_cycles = 200_000;
    check_jobs = true;
    check_cache = true;
    check_opt = false;
    degraded_ok = false;
  }

let opt_fuel = 200_000

type outcome = {
  verdict : verdict;
  result : Compile.result option;
      (** the [-j 1] compilation, when one was produced — the campaign
          reads histogrammable numbers off it and drops it *)
}

let site = "camp.oracle"
let () = Fault.register site

(** Deterministic per-segment initialization, identical for the
    interpreter and the simulator (and cheap to recompute — nothing is
    retained between programs). *)
let init_state st (p : Sp_ir.Program.t) =
  List.iter
    (fun (seg : Sp_ir.Memseg.t) ->
      match seg.Sp_ir.Memseg.elt with
      | Sp_ir.Memseg.Float_elt ->
        Sp_ir.Machine_state.init_farray st seg (fun i ->
            1.0 +. (0.01 *. float_of_int (((i * 7) + (seg.Sp_ir.Memseg.sid * 13)) mod 83)))
      | Sp_ir.Memseg.Int_elt ->
        Sp_ir.Machine_state.init_iarray st seg (fun i ->
            ((i * 5) + (seg.Sp_ir.Memseg.sid * 3)) mod 17))
    p.Sp_ir.Program.segs

(** The II sanity bound on one loop report: [Some reason] when a
    pipelined loop's interval is impossible ([ii < mii]) or pointless
    ([ii > seq_len]). Exposed for direct unit testing — the bound must
    hold on every pipelined loop of every generated program, so there
    is no deterministic trigger to bank. *)
let ii_violation (lr : Compile.loop_report) : string option =
  match (lr.Compile.status, lr.Compile.ii) with
  | Compile.Pipelined, Some ii ->
    if ii < lr.Compile.mii then
      Some
        (Printf.sprintf "loop%d: ii=%d below mii=%d" lr.Compile.l_id ii
           lr.Compile.mii)
    else if ii > lr.Compile.seq_len && lr.Compile.seq_len >= lr.Compile.mii
    then
      Some
        (Printf.sprintf "loop%d: ii=%d above seq_len=%d" lr.Compile.l_id ii
           lr.Compile.seq_len)
    else None
  | _ -> None

(** Degradation on one report: [Some reason] when the loop fell back
    after a caught internal error or a spent budget. *)
let degradation (lr : Compile.loop_report) : string option =
  if Compile.is_degraded lr.Compile.status then
    Some
      (Printf.sprintf "loop%d: %s" lr.Compile.l_id
         (Compile.status_to_string lr.Compile.status))
  else None

let first_map f reports = List.find_map f reports

let compile_config (cfg : config) ~jobs =
  { Compile.default with Compile.jobs; fuel = cfg.fuel }

(* Per-loop optimality-certificate tags of one certified compile.
   [Unknown] collapses to one tag: how far an infeasibility proof got
   before the budget ran out is budget- and order-dependent, so only
   decided verdicts are comparable. *)
let cert_tags (r : Compile.result) : (int * string) list =
  List.filter_map
    (fun (lr : Compile.loop_report) ->
      match lr.Compile.cert with
      | None -> None
      | Some c ->
        let ii = Option.value ~default:(-1) lr.Compile.ii in
        let tag =
          match c with
          | Compile.Cert_optimal _ -> Printf.sprintf "optimal@%d" ii
          | Compile.Cert_improved { heur_ii; _ } ->
            Printf.sprintf "improved:%d->%d" heur_ii ii
          | Compile.Cert_unknown _ -> "unknown"
        in
        Some (lr.Compile.l_id, tag))
    r.Compile.loops

(* The learn-on vs learn-off differential: conflict learning is pure
   pruning, so wherever both budget-capped certifications decide they
   must agree per loop. Skipped when a fault other than the nogood
   doctoring site is armed — the two extra compiles would consume that
   fault's trigger count (same reason the jobs and cache checks skip);
   the ["exact.nogood"] site itself only fires inside the learn-on
   certifier, which is precisely the corruption this check must
   detect. *)
let opt_divergence (cfg : config) (src : string) : string option =
  let skip =
    (not cfg.check_opt)
    ||
    match Fault.armed_spec () with
    | None -> false
    | Some (site, _) -> site <> Sp_opt.Exact.nogood_site
  in
  if skip then None
  else begin
    let certified learn =
      let config =
        {
          (compile_config cfg ~jobs:1) with
          Compile.certifier = Some (Sp_opt.Certify.hook ~fuel:opt_fuel ~learn ());
        }
      in
      cert_tags
        (Compile.program ~config cfg.machine (Sp_lang.Lower.compile_source src))
    in
    let off = certified false in
    let on = certified true in
    if List.length off <> List.length on then
      Some "learn-on and learn-off certified different loop sets"
    else
      List.find_map
        (fun ((l, a), (_, b)) ->
          if a <> b && a <> "unknown" && b <> "unknown" then
            Some (Printf.sprintf "loop%d: learn-off %s, learn-on %s" l a b)
          else None)
        (List.combine off on)
  end

(** Run the full oracle on [src]. Never raises. *)
let run (cfg : config) (src : string) : outcome =
  let fail kind detail result = { verdict = { kind; detail }; result } in
  try
    Fault.point site;
    let ir = Sp_lang.Lower.compile_source src in
    let r = Compile.program ~config:(compile_config cfg ~jobs:1) cfg.machine ir in
    match first_map ii_violation r.Compile.loops with
    | Some reason -> fail Ii_bound reason (Some r)
    | None -> (
      match Sp_vliw.Check.check_prog cfg.machine r.Compile.code with
      | v :: _ ->
        fail Invalid
          (Fmt.str "resource check: %a" Sp_vliw.Check.pp_violation v)
          (Some r)
      | [] ->
        let report = Sp_vliw.Validate.all cfg.machine r.Compile.code in
        if not (Sp_vliw.Validate.ok report) then
          fail Invalid "validator rejected the emitted code" (Some r)
        else begin
          let init st = init_state st ir in
          let oracle = Sp_ir.Interp.run ~init ir in
          match
            Sp_vliw.Sim.run ~init ~max_cycles:cfg.max_cycles cfg.machine ir
              r.Compile.code
          with
          | exception Sp_vliw.Sim.Cycle_limit n ->
            fail Hang (Printf.sprintf "no fixpoint after %d cycles" n) (Some r)
          | exception Sp_vliw.Sim.Write_conflict w ->
            fail Invalid ("write conflict: " ^ w) (Some r)
          | sim ->
            if
              not
                (Sp_ir.Machine_state.observably_equal
                   oracle.Sp_ir.Interp.state sim.Sp_vliw.Sim.state)
            then
              fail Mismatch "final state differs from the interpreter" (Some r)
            else begin
              let diverged =
                cfg.check_jobs
                && (not (Fault.is_armed ()))
                &&
                let r2 =
                  Compile.program
                    ~config:(compile_config cfg ~jobs:2)
                    cfg.machine
                    (Sp_lang.Lower.compile_source src)
                in
                (* distinct lowerings of the same source draw the same
                   dense register names, so the fingerprints are
                   directly comparable *)
                Compile.fingerprint r2 <> Compile.fingerprint r
              in
              if diverged then
                fail Jobs_diverge "-j 1 and -j 2 fingerprints differ" (Some r)
              else begin
                (* cold then warm through one shared schedule cache;
                   both must reproduce the direct compile byte for
                   byte. Skipped under an armed fault for the same
                   reason as the jobs check: the extra compiles would
                   consume the fault's trigger count. *)
                let cache_diverged =
                  cfg.check_cache
                  && (not (Fault.is_armed ()))
                  &&
                  let cache = Sp_serve.Cache.create ~capacity:64 in
                  let config =
                    {
                      (compile_config cfg ~jobs:1) with
                      Compile.cache = Some (Sp_serve.Cache.hook cache);
                    }
                  in
                  let fp () =
                    Compile.fingerprint
                      (Compile.program ~config cfg.machine
                         (Sp_lang.Lower.compile_source src))
                  in
                  let cold = fp () in
                  let warm = fp () in
                  let direct = Compile.fingerprint r in
                  cold <> direct || warm <> direct
                in
                if cache_diverged then
                  fail Cache_diverge
                    "cached compile fingerprint differs from direct" (Some r)
                else
                  match opt_divergence cfg src with
                  | Some reason -> fail Opt_diverge reason (Some r)
                  | None -> (
                    match
                      if cfg.degraded_ok then None
                      else first_map degradation r.Compile.loops
                    with
                    | Some reason -> fail Degraded reason (Some r)
                    | None -> fail Pass "" (Some r))
              end
            end
        end)
  with e -> fail Crash (Printexc.to_string e) None

(** Just the verdict kind — the minimizer's predicate. *)
let kind_of (cfg : config) (src : string) : kind = (run cfg src).verdict.kind
