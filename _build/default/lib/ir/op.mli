(** IR micro-operations — the "minimally indivisible sequences of
    micro-instructions" of the paper's Section 2.1. The scheduler never
    splits one; the machine description gives each a resource
    reservation and result latency. *)

module Opkind = Sp_machine.Opkind

type imm = Fimm of float | Iimm of int

(** A data-memory address: [seg\[base + idx + off\]] where [base] and
    [idx] are optional registers; [sub] is the semantic subscript used
    by dependence analysis. *)
type addr = {
  seg : Memseg.t;
  base : Vreg.t option;
  idx : Vreg.t option;
  off : int;
  sub : Subscript.t option;
}

type t = {
  uid : int;
  kind : Opkind.t;
  dst : Vreg.t option;
  srcs : Vreg.t list;
  imm : imm option;
  addr : addr option;
}

val compare : t -> t -> int

val equal : t -> t -> bool
(** By uid: a renamed copy is the same operation. *)

val reads : t -> Vreg.t list
(** Registers read at issue: sources plus address registers. *)

val writes : t -> Vreg.t list

val map_regs : (Vreg.t -> Vreg.t) -> t -> t
(** Apply a register substitution to all operands; the uid is
    preserved. *)

val is_mem : t -> bool
val is_load : t -> bool
val is_store : t -> bool
val is_flop : t -> bool

val pp_imm : Format.formatter -> imm -> unit
val pp_addr : Format.formatter -> addr -> unit
val pp : Format.formatter -> t -> unit

(** Operation supply: uids are dense per program. *)
module Supply : sig
  type supply

  val create : unit -> supply
  val count : supply -> int

  val mk :
    supply ->
    ?dst:Vreg.t ->
    ?srcs:Vreg.t list ->
    ?imm:imm ->
    ?addr:addr ->
    Opkind.t ->
    t
end
