(** Static resource-discipline checker: verifies that no instruction of
    an assembled program oversubscribes any machine resource. Exact for
    the machines in this repository (all reservations at offset 0). *)

type violation = {
  at : int;          (** instruction index *)
  resource : string;
  used : int;
  avail : int;
}

val pp_violation : Format.formatter -> violation -> unit

val check_prog : Sp_machine.Machine.t -> Prog.t -> violation list
(** All violations, in instruction order; [[]] for legal code. *)

exception Oversubscribed of violation

val check_exn : Sp_machine.Machine.t -> Prog.t -> unit
