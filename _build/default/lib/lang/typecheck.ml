(** Semantic analysis for the W2-like language.

    Checks performed:
    - every identifier is declared (or is an enclosing loop variable);
    - no duplicate declarations;
    - operand types agree (no implicit int/float coercion — use the
      [float]/[int] conversion intrinsics);
    - conditions are integers (0 = false);
    - array references carry the right number of integer subscripts;
    - intrinsics are applied at the right types and arities;
    - loop variables are not assigned within their loop;
    - [send]/[receive] use channels 0 or 1 and float data.

    Raises {!Error} with a source position on the first violation. *)

exception Error of Token.pos * string

let err p fmt = Fmt.kstr (fun s -> raise (Error (p, s))) fmt

type info =
  | Scalar of Ast.ty
  | Array of Ast.ty * (int * int) list
  | Loopvar

type env = {
  vars : (string, info) Hashtbl.t;
  mutable loop_vars : string list; (* in-scope loop variables *)
}

let intrinsics =
  (* name -> (argument types, result type) *)
  [
    ("sqrt", ([ Ast.Tfloat ], Ast.Tfloat));
    ("inverse", ([ Ast.Tfloat ], Ast.Tfloat));
    ("exp", ([ Ast.Tfloat ], Ast.Tfloat));
    ("abs", ([ Ast.Tfloat ], Ast.Tfloat));
    ("min", ([ Ast.Tfloat; Ast.Tfloat ], Ast.Tfloat));
    ("max", ([ Ast.Tfloat; Ast.Tfloat ], Ast.Tfloat));
    ("float", ([ Ast.Tint ], Ast.Tfloat));
    ("int", ([ Ast.Tfloat ], Ast.Tint));
  ]

let lookup env p name =
  match Hashtbl.find_opt env.vars name with
  | Some i -> i
  | None -> err p "undeclared identifier %s" name

let rec type_of env (e : Ast.expr) : Ast.ty =
  let p = e.Ast.e_pos in
  match e.Ast.e with
  | Ast.Eint _ -> Ast.Tint
  | Ast.Efloat _ -> Ast.Tfloat
  | Ast.Evar name -> (
    match lookup env p name with
    | Scalar t -> t
    | Loopvar -> Ast.Tint
    | Array _ -> err p "array %s used without subscript" name)
  | Ast.Eindex (name, idx) -> (
    match lookup env p name with
    | Array (t, dims) ->
      if List.length idx <> List.length dims then
        err p "array %s has %d dimension(s), %d subscript(s) given" name
          (List.length dims) (List.length idx);
      List.iter
        (fun i ->
          if type_of env i <> Ast.Tint then
            err i.Ast.e_pos "subscript of %s is not an int" name)
        idx;
      t
    | Scalar _ | Loopvar -> err p "%s is not an array" name)
  | Ast.Ebin (op, a, b) -> (
    let ta = type_of env a and tb = type_of env b in
    if ta <> tb then
      err p "operands have different types (%a vs %a)" Ast.pp_ty ta
        Ast.pp_ty tb;
    match op with
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div -> ta
    | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> Ast.Tint
    | Ast.And | Ast.Or ->
      if ta <> Ast.Tint then err p "boolean operands must be int";
      Ast.Tint)
  | Ast.Eun (Ast.Neg, a) -> type_of env a
  | Ast.Eun (Ast.Not, a) ->
    if type_of env a <> Ast.Tint then err p "'not' needs an int operand";
    Ast.Tint
  | Ast.Ecall (name, args) -> (
    match List.assoc_opt name intrinsics with
    | None -> err p "unknown function %s" name
    | Some (params, ret) ->
      if List.length args <> List.length params then
        err p "%s expects %d argument(s)" name (List.length params);
      List.iter2
        (fun a t ->
          if type_of env a <> t then
            err a.Ast.e_pos "argument of %s has wrong type" name)
        args params;
      ret)

let lvalue_type env (lv : Ast.lvalue) =
  match lv with
  | Ast.Lvar (name, p) -> (
    match lookup env p name with
    | Scalar t -> t
    | Loopvar -> err p "loop variable %s cannot be assigned" name
    | Array _ -> err p "array %s assigned without subscript" name)
  | Ast.Lindex (name, idx, p) ->
    type_of env { Ast.e_pos = p; e = Ast.Eindex (name, idx) }

let rec check_stmt env (s : Ast.stmt) =
  let p = s.Ast.s_pos in
  match s.Ast.s with
  | Ast.Sassign (lv, e) ->
    let tl = lvalue_type env lv and te = type_of env e in
    if tl <> te then
      err p "assignment type mismatch (%a := %a)" Ast.pp_ty tl Ast.pp_ty te
  | Ast.Sif (c, t, e) ->
    if type_of env c <> Ast.Tint then
      err c.Ast.e_pos "condition must be int (0 = false)";
    List.iter (check_stmt env) t;
    List.iter (check_stmt env) e
  | Ast.Sfor { var; lo; hi; body } ->
    if type_of env lo <> Ast.Tint then err lo.Ast.e_pos "loop bound not int";
    if type_of env hi <> Ast.Tint then err hi.Ast.e_pos "loop bound not int";
    let saved = Hashtbl.find_opt env.vars var in
    Hashtbl.replace env.vars var Loopvar;
    env.loop_vars <- var :: env.loop_vars;
    List.iter (check_stmt env) body;
    env.loop_vars <- List.tl env.loop_vars;
    (match saved with
    | Some i -> Hashtbl.replace env.vars var i
    | None -> Hashtbl.remove env.vars var)
  | Ast.Ssend (e, ch) ->
    if ch < 0 || ch > 1 then err p "channel must be 0 or 1";
    if type_of env e <> Ast.Tfloat then err p "send data must be float"
  | Ast.Sreceive (lv, ch) ->
    if ch < 0 || ch > 1 then err p "channel must be 0 or 1";
    if lvalue_type env lv <> Ast.Tfloat then
      err p "receive target must be float"

(** Check a whole program. Returns the (flat) variable environment for
    reuse by {!Lower}. *)
let check (p : Ast.program) =
  let env = { vars = Hashtbl.create 32; loop_vars = [] } in
  List.iter
    (fun (d : Ast.decl) ->
      if Hashtbl.mem env.vars d.Ast.d_name then
        err d.Ast.d_pos "duplicate declaration of %s" d.Ast.d_name;
      (match d.Ast.d_kind with
      | Ast.Darray { dims; _ } ->
        List.iter
          (fun (lo, hi) ->
            if hi < lo then
              err d.Ast.d_pos "empty array range %d..%d" lo hi)
          dims
      | Ast.Dscalar _ -> ());
      Hashtbl.replace env.vars d.Ast.d_name
        (match d.Ast.d_kind with
        | Ast.Dscalar t -> Scalar t
        | Ast.Darray { elem; dims; _ } -> Array (elem, dims)))
    p.Ast.p_decls;
  List.iter (check_stmt env) p.Ast.p_body;
  env
