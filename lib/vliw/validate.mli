(** Translation validation for assembled VLIW programs.

    Replays a {!Prog.t} against the machine's timing contract (the
    header of {!Sim}): register reads must not precede the producing
    operation's latency, no two in-flight writes may land on the same
    register in the same cycle, hardware loop-counter usage must be
    well-formed, and no two stores to the same element may issue in
    one cycle. The walk is along fall-through layout
    order — exact for straight-line stretches (where layout distance
    equals cycle distance) and conservative across taken branches;
    state is discarded after unconditional transfers so unreachable
    fall-through edges cannot produce false violations.

    {!all} bundles this timing validation with {!Check.check_prog}'s
    resource-discipline check into the single entry point behind
    [w2c --validate]. *)

type rule =
  | Latency
      (** register read while its only write(s) on this path are still
          in flight — the producer was displaced past its consumer.
          Only provable on the entry stretch (before the first
          unconditional transfer), where no older landed value can
          exist in the register file *)
  | Write_port    (** two in-flight writes to one register, same cycle *)
  | Counter       (** hardware loop-counter misuse or bad nesting *)
  | Mem_order     (** two stores to provably the same element in one
                      cycle — the element's next value is undefined *)

type violation = {
  at : int;          (** instruction index *)
  rule : rule;
  detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check_timing :
  ?ctrs:int ->
  ?live_in:Sp_ir.Vreg.t list ->
  Sp_machine.Machine.t ->
  Prog.t ->
  violation list
(** Timing-contract violations along fall-through, in layout order.
    [ctrs] is the number of hardware loop counters (default 16, the
    simulator's). [live_in] names registers holding a landed value when
    the stretch is entered (used when checking an excerpt, such as a
    loop's linearized fragments, rather than a whole program). *)

(** Combined verdict: timing contract plus resource discipline. *)
type report = {
  timing : violation list;
  resources : Check.violation list;
}

val all : ?ctrs:int -> Sp_machine.Machine.t -> Prog.t -> report
val ok : report -> bool
val pp_report : Format.formatter -> report -> unit
