(** Rolling time series for service telemetry: a fixed-capacity ring
    buffer of [(seq, value)] samples indexed by a {e logical} sequence
    number (a request counter, a campaign seed — never a wall clock),
    aggregated into fixed-width windows of mergeable histograms.

    The logical clock is the determinism contract: two runs that admit
    the same requests in the same order produce byte-identical window
    snapshots, no matter how fast the machine was. Wall-clock derived
    {e values} (latencies) may be stored in a series — they stay out of
    byte-stable artifacts, which only read the deterministic fields
    (window indices, counts, histogram counts of counter-valued
    series).

    Windows are mergeable: {!merge_window} adds two snapshots of the
    same window index pointwise (counts, sums, extrema, histogram
    buckets) and is associative and commutative, so shards that each
    observed a disjoint slice of a window combine into the window's
    true aggregate in any order — the same contract as
    [Sp_util.Histogram.merge], which it is built on. *)

type t

val create :
  ?capacity:int ->
  ?window:int ->
  lo:float ->
  width:float ->
  buckets:int ->
  unit ->
  t
(** [capacity] (default 4096) bounds retained samples — older samples
    fall off the ring but stay counted in {!count} and in any window
    snapshot taken before they fell off. [window] (default 32) is the
    number of sequence numbers per window bucket. [lo]/[width]/
    [buckets] fix the histogram shape of every window of this series
    (shapes must match for windows to merge). *)

val add : ?seq:int -> t -> float -> unit
(** Record one sample. [seq] defaults to one past the last recorded
    sequence number (starting at 0); passing it explicitly lets a
    campaign index by seed. *)

val count : t -> int
(** Samples ever recorded, including those evicted from the ring. *)

val retained : t -> (int * float) list
(** The ring's live samples, oldest first. *)

val capacity : t -> int
val window_size : t -> int

(** One window's aggregate. [w_hist] has the series' shape; [w_count]
    is 0 for a window with no samples (then [w_sum] is 0 and the
    extrema are meaningless — {!quantile} reports [None]). *)
type window = {
  w_index : int;  (** samples with [seq / window = w_index] *)
  w_count : int;
  w_sum : float;
  w_min : float;
  w_max : float;
  w_hist : Sp_util.Histogram.t;
}

val windows : t -> window list
(** Aggregates of the retained samples, ascending window index; windows
    with no retained samples are omitted. *)

val window_at : t -> int -> window
(** The aggregate of retained samples in one window — possibly empty. *)

val merge_window : window -> window -> window
(** Pointwise sum of two snapshots of the {e same} window index (raises
    [Invalid_argument] otherwise, or on histogram shape mismatch).
    Associative and commutative; an empty window is an identity. *)

val quantile : window -> float -> float option
(** Nearest-rank quantile of the window's histogram ([None] when the
    window is empty). [quantile w 0.5] is the median, [0.99] the p99. *)

val merge : t -> t -> t
(** Union of two series' retained samples (sorted by sequence number,
    newest [capacity] kept) with summed totals, for combining shards
    that observed disjoint sequence ranges. Requires equal capacity,
    window size and histogram shape. *)

val to_json : t -> Json.t
(** Versioned snapshot: total count, retained bounds, and per-window
    aggregates with p50/p99. Deterministic given the same samples. *)
