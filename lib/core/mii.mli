(** Lower bounds on the initiation interval (paper Section 2.2.1). *)

type t = {
  res_mii : int;  (** resource-constrained bound *)
  rec_mii : int;  (** recurrence-constrained bound *)
  mii : int;      (** max of the two, at least 1 *)
}

val resource_bound : Sp_machine.Machine.t -> Sunit.t array -> int
(** "The maximum ratio between the total number of times each resource
    is used and the number of available units per instruction." *)

val per_resource :
  Sp_machine.Machine.t -> Sunit.t array -> (string * int) list
(** Reservation-slot demand of one iteration, per resource name (used
    resources only, machine declaration order). Dividing by
    [interval * count] gives the modulo-reservation-table occupancy the
    schedule-quality profile reports. *)

val compute : Sp_machine.Machine.t -> Sunit.t array -> rec_mii:int -> t
(** Combine the resource bound of the units with a recurrence bound
    from {!Modsched.analyze}. *)
