(** Write every W2-sourced kernel of the Livermore set to
    [DIR/NAME.w2], one file per kernel, so shell harnesses (the CI
    daemon round-trip) can feed them to [w2c] and [w2cd] from disk.
    Kernels defined directly as IR have no source text and are
    skipped. *)

let () =
  let dir =
    match Sys.argv with
    | [| _; dir |] -> dir
    | _ ->
      prerr_endline "usage: dump_kernels DIR";
      exit 2
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let dumped =
    List.fold_left
      (fun n (k : Sp_kernels.Kernel.t) ->
        match k.Sp_kernels.Kernel.source with
        | Sp_kernels.Kernel.Ir _ -> n
        | Sp_kernels.Kernel.W2 src ->
          let path = Filename.concat dir (k.Sp_kernels.Kernel.name ^ ".w2") in
          let oc = open_out path in
          output_string oc src;
          close_out oc;
          n + 1)
      0 Sp_kernels.Livermore.all
  in
  Printf.printf "%d kernel(s) -> %s\n" dumped dir